//! Compressed sparse row storage for weighted undirected graphs.

use crate::invariant::{check_offsets, debug_validate, InvariantViolation};

/// A weighted undirected graph in CSR form.
///
/// Each undirected edge `{u, v}` is stored twice (once per direction).
/// Neighbor lists are sorted by target id, enabling `O(log deg)` edge
/// membership tests — which RSS's early-stop rule performs on every step.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<f64>,
}

impl CsrGraph {
    /// Builds from an undirected edge list over nodes `0..n`.
    ///
    /// Edges must be distinct as unordered pairs (duplicates are debug-
    /// asserted against); self-loops are rejected. Weights must be finite.
    pub fn from_undirected_edges(n: usize, edges: &[(u32, u32, f64)]) -> Self {
        let mut degree = vec![0usize; n];
        for &(u, v, w) in edges {
            assert!(u != v, "self-loop on node {u}");
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range"
            );
            assert!(w.is_finite(), "non-finite weight on edge ({u},{v})");
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        offsets.push(0usize);
        for d in &degree {
            total += d;
            offsets.push(total);
        }
        let m2 = offsets[n];
        let mut targets = vec![0u32; m2];
        let mut weights = vec![0f64; m2];
        let mut cursor = offsets.clone();
        for &(u, v, w) in edges {
            targets[cursor[u as usize]] = v;
            weights[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            weights[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        // Sort each row by target for binary-search membership tests.
        let mut graph = Self {
            offsets,
            targets,
            weights,
        };
        for u in 0..n {
            let (start, end) = (graph.offsets[u], graph.offsets[u + 1]);
            let row: &mut [u32] = &mut graph.targets[start..end];
            // Sort targets and weights together.
            let mut idx: Vec<usize> = (0..row.len()).collect();
            idx.sort_unstable_by_key(|&i| row[i]);
            let sorted_t: Vec<u32> = idx.iter().map(|&i| row[i]).collect();
            let sorted_w: Vec<f64> = idx.iter().map(|&i| graph.weights[start + i]).collect();
            graph.targets[start..end].copy_from_slice(&sorted_t);
            graph.weights[start..end].copy_from_slice(&sorted_w);
            debug_assert!(
                graph.targets[start..end].windows(2).all(|w| w[0] < w[1]),
                "duplicate edge incident to node {u}"
            );
        }
        debug_validate("CsrGraph::from_undirected_edges", || graph.validate());
        graph
    }

    /// Assembles a graph directly from its CSR arrays, **without
    /// validating them**. This is the raw seam the property tests use to
    /// build deliberately corrupted instances for [`CsrGraph::validate`];
    /// everything else should use [`CsrGraph::from_undirected_edges`].
    pub fn from_raw_parts(offsets: Vec<usize>, targets: Vec<u32>, weights: Vec<f64>) -> Self {
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Checks every structural invariant of the undirected CSR form:
    ///
    /// * `offsets` is monotone from 0 and consistent with the target and
    ///   weight array lengths;
    /// * each neighbor list is strictly ascending (sorted, no duplicate
    ///   edges), in bounds, and free of self-loops;
    /// * every weight is finite;
    /// * **symmetry**: each stored direction `(u, v, w)` has its mirror
    ///   `(v, u)` present with the identical weight — the two directions
    ///   of one undirected edge.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("CsrGraph", detail));
        let n = self.offsets.len().saturating_sub(1);
        check_offsets(
            "CsrGraph",
            "adjacency",
            &self.offsets,
            n,
            self.targets.len(),
        )?;
        if self.weights.len() != self.targets.len() {
            return err(format!(
                "{} weights for {} targets",
                self.weights.len(),
                self.targets.len()
            ));
        }
        for u in 0..n {
            let row = &self.targets[self.offsets[u]..self.offsets[u + 1]];
            if let Some(w) = row.windows(2).find(|w| w[0] >= w[1]) {
                return err(format!(
                    "neighbors of {u} not strictly ascending: {} then {}",
                    w[0], w[1]
                ));
            }
            for &v in row {
                if v as usize >= n {
                    return err(format!("edge ({u}, {v}) out of bounds (n = {n})"));
                }
                if v as usize == u {
                    return err(format!("self-loop on node {u}"));
                }
            }
        }
        if let Some((i, &w)) = self
            .weights
            .iter()
            .enumerate()
            .find(|(_, w)| !w.is_finite())
        {
            return err(format!("weight #{i} is {w} (want finite)"));
        }
        for u in 0..n {
            let row = &self.targets[self.offsets[u]..self.offsets[u + 1]];
            for (i, &v) in row.iter().enumerate() {
                let w = self.weights[self.offsets[u] + i];
                match self.edge_weight(v, u as u32) {
                    Some(back) if back == w => {}
                    Some(back) => {
                        return err(format!(
                            "asymmetric weights on edge {{{u}, {v}}}: {w} vs {back}"
                        ));
                    }
                    None => {
                        return err(format!(
                            "edge ({u}, {v}) stored without its mirror ({v}, {u})"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Sorted neighbor ids of `u`.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Weights aligned with [`CsrGraph::neighbors`].
    pub fn neighbor_weights(&self, u: u32) -> &[f64] {
        &self.weights[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Weight of edge `{u, v}` if present (binary search, O(log deg)).
    pub fn edge_weight(&self, u: u32, v: u32) -> Option<f64> {
        let row = self.neighbors(u);
        row.binary_search(&v)
            .ok()
            .map(|i| self.weights[self.offsets[u as usize] + i])
    }

    /// True when `{u, v}` is an edge.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates each undirected edge once as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.node_count() as u32).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .zip(self.neighbor_weights(u))
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, &w)| (u, v, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 1-2, 0-2 (triangle), 2-3 (tail)
        CsrGraph::from_undirected_edges(4, &[(0, 1, 0.5), (1, 2, 0.7), (0, 2, 0.9), (2, 3, 0.1)])
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn neighbors_sorted_with_aligned_weights() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbor_weights(2), &[0.9, 0.7, 0.1]);
    }

    #[test]
    fn edge_lookup() {
        let g = triangle_plus_tail();
        assert_eq!(g.edge_weight(0, 1), Some(0.5));
        assert_eq!(g.edge_weight(1, 0), Some(0.5));
        assert_eq!(g.edge_weight(0, 3), None);
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = triangle_plus_tail();
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1, 1.0)]);
        assert_eq!(g.degree(2), 0);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        CsrGraph::from_undirected_edges(2, &[(1, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        CsrGraph::from_undirected_edges(2, &[(0, 5, 1.0)]);
    }
}
