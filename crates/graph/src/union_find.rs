//! Disjoint-set forest with path halving and union by size.
//!
//! Used to turn matched pairs into entity clusters (records matched
//! transitively form one entity, mirroring the clique semantics of
//! `G_r^opt` in §VI-A) and by the connected-component decomposition.

/// Disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    n_sets: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "UnionFind supports up to u32::MAX elements"
        );
        Self {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            n_sets: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn set_count(&self) -> usize {
        self.n_sets
    }

    /// Finds the representative of `x` (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Unions the sets of `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.n_sets -= 1;
        true
    }

    /// True when `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }

    /// Consumes the forest and returns all sets as sorted member lists,
    /// ordered by smallest member.
    pub fn into_sets(mut self) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut by_root: std::collections::HashMap<u32, Vec<u32>> =
            std::collections::HashMap::new();
        for x in 0..n as u32 {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut sets: Vec<Vec<u32>> = by_root.into_values().collect(); // er-lint: allow(unordered_iteration) -- members and sets are both sorted below
        for s in &mut sets {
            s.sort_unstable();
        }
        sets.sort_by_key(|s| s[0]);
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already connected");
        assert_eq!(uf.set_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(2), 3);
    }

    #[test]
    fn into_sets_sorted() {
        let mut uf = UnionFind::new(6);
        uf.union(4, 2);
        uf.union(5, 3);
        let sets = uf.into_sets();
        assert_eq!(sets, vec![vec![0], vec![1], vec![2, 4], vec![3, 5]]);
    }

    #[test]
    fn empty_and_single() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.into_sets().is_empty());
        let mut uf = UnionFind::new(1);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn chain_union_produces_one_set() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.set_count(), 1);
        assert_eq!(uf.set_size(50), 100);
    }
}
