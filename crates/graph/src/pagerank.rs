//! Damped PageRank on an undirected graph (Eq. 3 of the paper).
//!
//! Used by the TW-IDF baseline (§III-B): term salience on the sliding-
//! window co-occurrence graph, with the TextRank update
//! `s(ti) = (1 − φ) + φ · Σ_{tj ∈ N(ti)} s(tj) / |N(tj)|`.
//! Also the "PageRank" column of Table IV.

use crate::csr::CsrGraph;

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor φ; the paper sets 0.85.
    pub damping: f64,
    /// Convergence threshold on the L1 change per iteration.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tolerance: 1e-8,
            max_iterations: 200,
        }
    }
}

/// Runs PageRank; returns per-node salience scores.
///
/// Isolated nodes receive the base score `1 − φ`. The TextRank formulation
/// (unnormalized scores around 1.0) is used rather than the probability-
/// distribution formulation, matching Eq. 3.
pub fn pagerank(graph: &CsrGraph, config: &PageRankConfig) -> Vec<f64> {
    let n = graph.node_count();
    let phi = config.damping;
    assert!((0.0..1.0).contains(&phi), "damping must be in [0, 1)");
    let mut scores = vec![1.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..config.max_iterations {
        // Push-based accumulation: each node distributes score/deg to its
        // neighbors — one pass over the adjacency.
        next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n as u32 {
            let deg = graph.degree(u);
            if deg == 0 {
                continue;
            }
            let share = scores[u as usize] / deg as f64;
            for &v in graph.neighbors(u) {
                next[v as usize] += share;
            }
        }
        let mut delta = 0.0;
        for u in 0..n {
            let new = (1.0 - phi) + phi * next[u];
            delta += (new - scores[u]).abs();
            scores[u] = new;
        }
        if delta < config.tolerance {
            break;
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_scores_highest_on_star() {
        // Star: 0 connected to 1..=4.
        let edges: Vec<(u32, u32, f64)> = (1..5).map(|i| (0, i, 1.0)).collect();
        let g = CsrGraph::from_undirected_edges(5, &edges);
        let s = pagerank(&g, &PageRankConfig::default());
        for i in 1..5 {
            assert!(s[0] > s[i], "hub must outrank leaves: {s:?}");
        }
        // Leaves are symmetric.
        for i in 2..5 {
            assert!((s[1] - s[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn isolated_node_gets_base_score() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1, 1.0)]);
        let s = pagerank(&g, &PageRankConfig::default());
        assert!((s[2] - 0.15).abs() < 1e-9);
    }

    #[test]
    fn regular_graph_is_uniform() {
        // Cycle: every node has degree 2 → all scores equal 1.
        let edges: Vec<(u32, u32, f64)> = (0..6).map(|i| (i, (i + 1) % 6, 1.0)).collect();
        let g = CsrGraph::from_undirected_edges(6, &edges);
        let s = pagerank(&g, &PageRankConfig::default());
        for &x in &s {
            assert!((x - 1.0).abs() < 1e-6, "{s:?}");
        }
    }

    #[test]
    fn converges_and_is_finite() {
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (0, 2, 1.0),
        ];
        let g = CsrGraph::from_undirected_edges(4, &edges);
        let s = pagerank(&g, &PageRankConfig::default());
        assert!(s.iter().all(|x| x.is_finite() && *x > 0.0));
    }

    #[test]
    fn zero_damping_gives_constant() {
        let g = CsrGraph::from_undirected_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let cfg = PageRankConfig {
            damping: 0.0,
            ..Default::default()
        };
        let s = pagerank(&g, &cfg);
        for &x in &s {
            assert!((x - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_undirected_edges(0, &[]);
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }
}
