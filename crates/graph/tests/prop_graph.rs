//! Property tests for the graph substrates: structural invariants that
//! must hold for any generated graph.

use std::collections::HashSet;

use er_graph::{components, BipartiteGraphBuilder, CsrGraph, PairNode, RecordGraph, UnionFind};
use proptest::prelude::*;

/// Pulls the CSR arrays back out of a valid graph so the mutation tests
/// can reassemble corrupted variants through `from_raw_parts`.
fn raw_parts(g: &CsrGraph) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    let mut offsets = vec![0usize];
    let mut targets = Vec::new();
    let mut weights = Vec::new();
    for u in 0..g.node_count() as u32 {
        targets.extend_from_slice(g.neighbors(u));
        weights.extend_from_slice(g.neighbor_weights(u));
        offsets.push(targets.len());
    }
    (offsets, targets, weights)
}

/// Random undirected edge list over `n` nodes without duplicates or
/// self-loops.
fn edges(n: u32, max_edges: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32, f64)>)> {
    proptest::collection::btree_set((0..n, 0..n), 0..max_edges).prop_map(move |set| {
        let edges: Vec<(u32, u32, f64)> = set
            .into_iter()
            .filter(|&(a, b)| a < b)
            .enumerate()
            .map(|(i, (a, b))| (a, b, 0.1 + (i % 7) as f64 * 0.3))
            .collect();
        (n, edges)
    })
}

proptest! {
    #[test]
    fn csr_degree_sum_is_twice_edges((n, es) in edges(24, 60)) {
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        let degree_sum: usize = (0..n).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        prop_assert_eq!(g.edge_count(), es.len());
    }

    #[test]
    fn csr_neighbors_sorted_and_symmetric((n, es) in edges(24, 60)) {
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        for u in 0..n {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &v in nbrs {
                prop_assert!(g.has_edge(v, u), "symmetry broken for ({u},{v})");
                prop_assert_eq!(g.edge_weight(u, v), g.edge_weight(v, u));
            }
        }
    }

    #[test]
    fn csr_edges_iterator_round_trips((n, es) in edges(24, 60)) {
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        let mut want: Vec<(u32, u32, f64)> = es.clone();
        want.sort_by_key(|e| (e.0, e.1));
        let mut got: Vec<(u32, u32, f64)> = g.edges().collect();
        got.sort_by_key(|e| (e.0, e.1));
        prop_assert_eq!(want, got);
    }

    #[test]
    fn components_partition_nodes((n, es) in edges(24, 60)) {
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        let comps = components(&g);
        let total: usize = comps.members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n as usize);
        let distinct: HashSet<u32> = comps.members.iter().flatten().copied().collect();
        prop_assert_eq!(distinct.len(), n as usize);
        // Every edge stays within one component.
        for (u, v, _) in g.edges() {
            prop_assert_eq!(comps.label[u as usize], comps.label[v as usize]);
        }
    }

    #[test]
    fn components_agree_with_union_find((n, es) in edges(24, 60)) {
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        let comps = components(&g);
        let mut uf = UnionFind::new(n as usize);
        for (u, v, _) in g.edges() {
            uf.union(u, v);
        }
        prop_assert_eq!(comps.count(), uf.set_count());
        for a in 0..n {
            for b in 0..n {
                let same_comp = comps.label[a as usize] == comps.label[b as usize];
                prop_assert_eq!(same_comp, uf.connected(a, b), "nodes {} {}", a, b);
            }
        }
    }

    #[test]
    fn union_find_set_sizes_sum(n in 1usize..40, ops in proptest::collection::vec((0u32..40, 0u32..40), 0..60)) {
        let mut uf = UnionFind::new(n);
        for (a, b) in ops {
            let (a, b) = (a % n as u32, b % n as u32);
            if a != b {
                uf.union(a, b);
            }
        }
        let sets = uf.into_sets();
        let total: usize = sets.iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn bipartite_duality_holds(postings in proptest::collection::vec(
        proptest::collection::btree_set(0u32..16, 0..5), 1..10)
    ) {
        let lists: Vec<Vec<u32>> = postings
            .iter()
            .map(|s| s.iter().copied().collect())
            .collect();
        let mut builder = BipartiteGraphBuilder::new(16, lists.len());
        for (t, p) in lists.iter().enumerate() {
            builder = builder.postings(t as u32, p);
        }
        let g = builder.build();
        // Edge count from both sides must agree.
        let from_terms: usize = (0..g.term_count() as u32)
            .map(|t| g.pairs_of_term(t).len())
            .sum();
        let from_pairs: usize = (0..g.pair_count() as u32)
            .map(|p| g.terms_of_pair(p).len())
            .sum();
        prop_assert_eq!(from_terms, from_pairs);
        prop_assert_eq!(from_terms, g.edge_count());
        // P_t equals the incident pair count, and every pair lookup works.
        for t in 0..g.term_count() as u32 {
            prop_assert_eq!(g.pt(t) as usize, g.pairs_of_term(t).len());
        }
        for (i, pair) in g.pairs().iter().enumerate() {
            prop_assert_eq!(g.pair_id(pair.a, pair.b), Some(i as u32));
            prop_assert!(pair.a < pair.b);
        }
        // Every term listed for a pair must contain both records.
        for p in 0..g.pair_count() as u32 {
            let pair = g.pair(p);
            for &t in g.terms_of_pair(p) {
                prop_assert!(lists[t as usize].contains(&pair.a));
                prop_assert!(lists[t as usize].contains(&pair.b));
            }
        }
        // ...and the structure passes its own invariant validator.
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn constructed_csr_validates((n, es) in edges(24, 60)) {
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        prop_assert!(g.validate().is_ok());
        let (offsets, targets, weights) = raw_parts(&g);
        prop_assert!(CsrGraph::from_raw_parts(offsets, targets, weights).validate().is_ok());
    }

    #[test]
    fn asymmetric_weight_fails_validation((n, es) in edges(24, 60)) {
        if es.is_empty() {
            return;
        }
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        let (offsets, targets, mut weights) = raw_parts(&g);
        // Bump one stored direction only: its mirror keeps the old weight.
        weights[0] += 1.0;
        let bad = CsrGraph::from_raw_parts(offsets, targets, weights);
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn unsorted_neighbors_fail_validation((n, es) in edges(24, 60)) {
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        let Some(victim) = (0..n).find(|&u| g.degree(u) >= 2) else {
            return;
        };
        let start: usize = (0..victim).map(|u| g.degree(u)).sum();
        let (offsets, mut targets, weights) = raw_parts(&g);
        targets.swap(start, start + 1);
        let bad = CsrGraph::from_raw_parts(offsets, targets, weights);
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn nan_weight_fails_validation((n, es) in edges(24, 60), pick in 0usize..1024) {
        if es.is_empty() {
            return;
        }
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        let (offsets, targets, mut weights) = raw_parts(&g);
        let i = pick % weights.len();
        weights[i] = f64::NAN;
        let bad = CsrGraph::from_raw_parts(offsets, targets, weights);
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn dropped_mirror_fails_validation((n, es) in edges(24, 60)) {
        if es.is_empty() {
            return;
        }
        let g = CsrGraph::from_undirected_edges(n as usize, &es);
        let (mut offsets, mut targets, mut weights) = raw_parts(&g);
        // Remove the first node's first incident direction; its mirror
        // survives elsewhere, so symmetry is broken.
        let u = (0..n as usize).find(|&u| offsets[u + 1] > offsets[u]).unwrap();
        let at = offsets[u];
        targets.remove(at);
        weights.remove(at);
        for o in offsets.iter_mut().skip(u + 1) {
            *o -= 1;
        }
        let bad = CsrGraph::from_raw_parts(offsets, targets, weights);
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn record_graph_validates((n, es) in edges(24, 60)) {
        let pairs: Vec<PairNode> = es.iter().map(|&(a, b, _)| PairNode::new(a, b)).collect();
        let scores: Vec<f64> = es.iter().map(|&(_, _, w)| w).collect();
        let g = RecordGraph::from_pair_scores(n as usize, &pairs, &scores);
        prop_assert!(g.validate().is_ok());
    }
}
