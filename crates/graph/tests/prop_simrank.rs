//! Property tests pinning the CSR-flattened SimRank kernel to the
//! retained HashMap reference oracle.
//!
//! Three contracts, each over random bipartite record–term graphs:
//!
//! 1. **Bit-identity to the oracle** — the flattened kernel reproduces
//!    the HashMap mutual recursion bit-for-bit (same summation order,
//!    pruned pairs contribute an exact `+0.0`), for any iteration count,
//!    decay pair, and candidate filter.
//! 2. **Thread-count invariance** — pooled runs at 1/2/8 workers return
//!    the same bits (Jacobi slot independence + deterministic chunking).
//! 3. **Dirty scratch reuse** — a [`SimRankScratch`] left full of one
//!    graph's scores produces exactly a fresh scratch's output when
//!    reused on a different graph (the `prepare` zeroing contract).

use er_graph::simrank::reference::bipartite_simrank_reference;
use er_graph::{
    bipartite_simrank, bipartite_simrank_pooled, simrank_flat, SimRankConfig, SimRankScratch,
    SimRankUniverse,
};
use er_pool::WorkerPool;
use proptest::prelude::*;

/// Random bipartite graph: `(n_terms, record_terms)` where each record
/// holds a sorted, deduplicated term set (possibly empty — isolated
/// records must be handled, not assumed away).
fn bipartite() -> impl Strategy<Value = (usize, Vec<Vec<u32>>)> {
    (2usize..14, 1usize..20).prop_flat_map(|(n_terms, n_records)| {
        proptest::collection::vec(
            proptest::collection::btree_set(0..n_terms as u32, 0..6),
            n_records,
        )
        .prop_map(move |sets| {
            let record_terms: Vec<Vec<u32>> =
                sets.into_iter().map(|s| s.into_iter().collect()).collect();
            (n_terms, record_terms)
        })
    })
}

fn as_slices(owned: &[Vec<u32>]) -> Vec<&[u32]> {
    owned.iter().map(Vec::as_slice).collect()
}

proptest! {
    #[test]
    fn flat_matches_hashmap_reference_bitwise(
        (n_terms, owned) in bipartite(),
        iterations in 0usize..5,
        c1 in 0.1f64..0.95,
        c2 in 0.1f64..0.95,
        filtered in (0u8..2).prop_map(|v| v == 1),
    ) {
        let record_terms = as_slices(&owned);
        let config = SimRankConfig { c1, c2, iterations };
        let parity = |a: u32, b: u32| (a + b).is_multiple_of(2);
        let filter: Option<&dyn Fn(u32, u32) -> bool> =
            if filtered { Some(&parity) } else { None };
        let (ref_rec, ref_term) =
            bipartite_simrank_reference(&record_terms, n_terms, &config, filter);
        let flat = bipartite_simrank(&record_terms, n_terms, &config, filter);
        prop_assert_eq!(flat.tracked_record_pairs(), ref_rec.len());
        for (pair, s) in flat.record_entries() {
            prop_assert_eq!(s.to_bits(), ref_rec[&pair].to_bits(),
                "record scores diverged at {:?}", pair);
        }
        let mut term_pairs = 0usize;
        for (pair, s) in flat.term_entries() {
            term_pairs += 1;
            prop_assert_eq!(s.to_bits(), ref_term[&pair].to_bits(),
                "term scores diverged at {:?}", pair);
        }
        prop_assert_eq!(term_pairs, ref_term.len());
    }

    #[test]
    fn pooled_is_invariant_across_thread_counts((n_terms, owned) in bipartite()) {
        let record_terms = as_slices(&owned);
        let config = SimRankConfig::default();
        let serial = bipartite_simrank(&record_terms, n_terms, &config, None);
        let baseline: Vec<(u32, u32, u64)> = serial
            .record_entries()
            .map(|((a, b), s)| (a, b, s.to_bits()))
            .collect();
        for threads in [2usize, 8] {
            let pool = WorkerPool::new(threads);
            let pooled = bipartite_simrank_pooled(&record_terms, n_terms, &config, None, &pool);
            let got: Vec<(u32, u32, u64)> = pooled
                .record_entries()
                .map(|((a, b), s)| (a, b, s.to_bits()))
                .collect();
            prop_assert_eq!(&got, &baseline, "diverged at threads={}", threads);
        }
    }

    #[test]
    fn dirty_scratch_reuse_does_not_leak(
        (n_terms_a, owned_a) in bipartite(),
        (n_terms_b, owned_b) in bipartite(),
    ) {
        let config = SimRankConfig::default();
        let pool = WorkerPool::new(1);

        // Dirty the scratch with graph A's scores...
        let universe_a = SimRankUniverse::build(&as_slices(&owned_a), n_terms_a, None);
        let mut dirty = SimRankScratch::default();
        simrank_flat(&universe_a, &config, &mut dirty, &pool);

        // ...then reuse it on graph B and compare against a fresh one.
        let universe_b = SimRankUniverse::build(&as_slices(&owned_b), n_terms_b, None);
        simrank_flat(&universe_b, &config, &mut dirty, &pool);
        let mut fresh = SimRankScratch::default();
        simrank_flat(&universe_b, &config, &mut fresh, &pool);
        let dirty_bits: Vec<u64> = dirty.record_scores().iter().map(|s| s.to_bits()).collect();
        let fresh_bits: Vec<u64> = fresh.record_scores().iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(dirty_bits, fresh_bits);
        let dirty_terms: Vec<u64> = dirty.term_scores().iter().map(|s| s.to_bits()).collect();
        let fresh_terms: Vec<u64> = fresh.term_scores().iter().map(|s| s.to_bits()).collect();
        prop_assert_eq!(dirty_terms, fresh_terms);
    }
}
