//! Conversions between entity clusters and match-pair sets.

use crate::confusion::ConfusionCounts;
use crate::pair_eval::TruthPairs;

/// Enumerates every within-cluster pair `(a, b)` with `a < b`.
pub fn clusters_to_pairs(clusters: &[Vec<u32>]) -> Vec<(u32, u32)> {
    let mut pairs = Vec::new();
    for cluster in clusters {
        for (i, &a) in cluster.iter().enumerate() {
            for &b in &cluster[i + 1..] {
                pairs.push(if a < b { (a, b) } else { (b, a) });
            }
        }
    }
    pairs
}

/// Pairwise confusion counts of predicted clusters against truth clusters
/// (the standard pairwise-F1 clustering measure used by the Paper/Cora
/// benchmark, where entities have up to 192 records).
pub fn pairwise_f1_of_clusters(predicted: &[Vec<u32>], truth: &[Vec<u32>]) -> ConfusionCounts {
    let truth_pairs = TruthPairs::from_clusters(truth);
    crate::pair_eval::evaluate_pairs(clusters_to_pairs(predicted), &truth_pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_enumeration() {
        let pairs = clusters_to_pairs(&[vec![3, 1, 2], vec![9], vec![4, 5]]);
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![(1, 2), (1, 3), (2, 3), (4, 5)]);
    }

    #[test]
    fn identical_clusterings_score_one() {
        let clusters = vec![vec![0, 1, 2], vec![3, 4]];
        let c = pairwise_f1_of_clusters(&clusters, &clusters);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn over_merged_clustering_loses_precision() {
        let truth = vec![vec![0, 1], vec![2, 3]];
        let predicted = vec![vec![0, 1, 2, 3]];
        let c = pairwise_f1_of_clusters(&predicted, &truth);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 4);
        assert_eq!(c.fn_, 0);
        assert_eq!(c.recall(), 1.0);
        assert!(c.precision() < 0.5);
    }

    #[test]
    fn over_split_clustering_loses_recall() {
        let truth = vec![vec![0, 1, 2]];
        let predicted = vec![vec![0, 1], vec![2]];
        let c = pairwise_f1_of_clusters(&predicted, &truth);
        assert_eq!(c.tp, 1);
        assert_eq!(c.fp, 0);
        assert_eq!(c.fn_, 2);
        assert_eq!(c.precision(), 1.0);
    }

    #[test]
    fn singletons_produce_no_pairs() {
        assert!(clusters_to_pairs(&[vec![1], vec![2]]).is_empty());
        let c = pairwise_f1_of_clusters(&[vec![1], vec![2]], &[vec![1], vec![2]]);
        assert_eq!(c, ConfusionCounts::default());
    }
}
