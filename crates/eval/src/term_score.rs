//! The `score(t)` discriminativeness criterion of §VII-E.
//!
//! `score(t) = ( Σ_{t ∈ ri ∧ t ∈ rj} I(ri, rj) ) / P_t` — the fraction of
//! the record pairs connected to term `t` in the bipartite graph that
//! refer to the same entity. A perfectly discriminative term (product
//! model, phone number) scores 1; a common term shared by many entities
//! scores near 0. Figure 4 plots this value against the rank of the
//! learned weight; Table IV reports the Spearman correlation between the
//! two orderings.

/// `score(t)` for one term given the record pairs incident to it.
/// Returns `None` when the term has no incident pairs (`P_t = 0`).
pub fn term_discriminativeness(
    pairs: &[(u32, u32)],
    is_match: impl Fn(u32, u32) -> bool,
) -> Option<f64> {
    if pairs.is_empty() {
        return None;
    }
    let matching = pairs.iter().filter(|&&(a, b)| is_match(a, b)).count();
    Some(matching as f64 / pairs.len() as f64)
}

/// Builds the Figure-4 series: terms sorted by **descending learned
/// weight**, each paired with its `score(t)`.
///
/// * `weights[i]` — the learned weight of term `i` (e.g. ITER's `x_t`).
/// * `scores[i]` — `score(t)` for term `i`, `None` when `P_t = 0` (such
///   terms are skipped, matching the paper which only plots terms that
///   appear in the bipartite graph).
///
/// Returns `(rank, score)` pairs with rank starting at 1.
pub fn term_score_series(weights: &[f64], scores: &[Option<f64>]) -> Vec<(usize, f64)> {
    assert_eq!(
        weights.len(),
        scores.len(),
        "weights and scores must be parallel"
    );
    let mut terms: Vec<(f64, f64)> = weights
        .iter()
        .zip(scores)
        .filter_map(|(&w, s)| s.map(|sc| (w, sc)))
        .collect();
    terms.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite weights"));
    terms
        .into_iter()
        .enumerate()
        .map(|(i, (_, sc))| (i + 1, sc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_matching_scores_one() {
        let s = term_discriminativeness(&[(0, 1), (2, 3)], |_, _| true);
        assert_eq!(s, Some(1.0));
    }

    #[test]
    fn no_matching_scores_zero() {
        let s = term_discriminativeness(&[(0, 1)], |_, _| false);
        assert_eq!(s, Some(0.0));
    }

    #[test]
    fn partial_fraction() {
        let s = term_discriminativeness(&[(0, 1), (0, 2), (1, 2), (3, 4)], |a, b| {
            (a, b) == (0, 1) || (a, b) == (3, 4)
        });
        assert_eq!(s, Some(0.5));
    }

    #[test]
    fn empty_pairs_is_none() {
        assert_eq!(term_discriminativeness(&[], |_, _| true), None);
    }

    #[test]
    fn series_sorted_by_descending_weight() {
        let weights = [0.1, 0.9, 0.5];
        let scores = [Some(0.0), Some(1.0), Some(0.5)];
        let series = term_score_series(&weights, &scores);
        assert_eq!(series, vec![(1, 1.0), (2, 0.5), (3, 0.0)]);
    }

    #[test]
    fn series_skips_unscored_terms() {
        let weights = [0.9, 0.8, 0.7];
        let scores = [Some(1.0), None, Some(0.2)];
        let series = term_score_series(&weights, &scores);
        assert_eq!(series, vec![(1, 1.0), (2, 0.2)]);
    }

    #[test]
    fn ideal_learner_yields_decreasing_series() {
        // If the learned weight equals score(t), the series is sorted desc.
        let scores: Vec<Option<f64>> = (0..10).map(|i| Some(1.0 - i as f64 / 10.0)).collect();
        let weights: Vec<f64> = scores.iter().map(|s| s.unwrap()).collect();
        let series = term_score_series(&weights, &scores);
        for w in series.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
