//! Evaluating a predicted pair set against ground truth.

use std::collections::HashSet;

use crate::confusion::ConfusionCounts;

/// The set of ground-truth matching pairs.
///
/// Stored as normalized `(min, max)` record-id pairs. `total` equals the
/// number of true matching pairs in the *whole* dataset, so recall charges
/// the matcher for true pairs it never even scored (e.g. pairs sharing no
/// term, which the bipartite graph excludes by construction).
#[derive(Debug, Clone)]
pub struct TruthPairs {
    set: HashSet<(u32, u32)>,
}

impl TruthPairs {
    /// Builds from an iterator of record-id pairs (order-insensitive).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let set = pairs
            .into_iter()
            .map(|(a, b)| {
                assert!(a != b, "a record does not match itself");
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        Self { set }
    }

    /// Builds from entity clusters: every within-cluster pair is a match.
    pub fn from_clusters(clusters: &[Vec<u32>]) -> Self {
        Self::from_pairs(crate::cluster::clusters_to_pairs(clusters))
    }

    /// Number of true matching pairs.
    pub fn total(&self) -> usize {
        self.set.len()
    }

    /// True when `(a, b)` is a ground-truth match.
    pub fn is_match(&self, a: u32, b: u32) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.set.contains(&key)
    }

    /// Iterates the true pairs (normalized order).
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.set.iter().copied()
    }
}

/// Scores `predicted` pairs against the truth. Duplicate predictions (in
/// either order) are counted once.
pub fn evaluate_pairs(
    predicted: impl IntoIterator<Item = (u32, u32)>,
    truth: &TruthPairs,
) -> ConfusionCounts {
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut tp = 0usize;
    let mut fp = 0usize;
    for (a, b) in predicted {
        let key = if a < b { (a, b) } else { (b, a) };
        if !seen.insert(key) {
            continue;
        }
        if truth.is_match(a, b) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    ConfusionCounts::new(tp, fp, truth.total() - tp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> TruthPairs {
        TruthPairs::from_pairs([(0, 1), (2, 3), (4, 5)])
    }

    #[test]
    fn counts_tp_fp_fn() {
        let c = evaluate_pairs([(1, 0), (2, 3), (0, 2)], &truth());
        assert_eq!(c, ConfusionCounts::new(2, 1, 1));
    }

    #[test]
    fn duplicates_counted_once() {
        let c = evaluate_pairs([(0, 1), (1, 0), (0, 1)], &truth());
        assert_eq!(c, ConfusionCounts::new(1, 0, 2));
    }

    #[test]
    fn empty_prediction_full_fn() {
        let c = evaluate_pairs(std::iter::empty(), &truth());
        assert_eq!(c, ConfusionCounts::new(0, 0, 3));
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn from_clusters_enumerates_within_cluster_pairs() {
        let t = TruthPairs::from_clusters(&[vec![1, 2, 3], vec![7, 8]]);
        assert_eq!(t.total(), 4); // 3 choose 2 + 1
        assert!(t.is_match(3, 1));
        assert!(t.is_match(8, 7));
        assert!(!t.is_match(1, 7));
    }

    #[test]
    fn order_insensitive() {
        let t = TruthPairs::from_pairs([(5, 2)]);
        assert!(t.is_match(2, 5));
        assert!(t.is_match(5, 2));
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_pair_rejected() {
        TruthPairs::from_pairs([(3, 3)]);
    }
}
