//! Spearman's rank correlation coefficient (Table IV).
//!
//! The paper assesses ITER's learned term weights by the rank correlation
//! between the weight ordering and the `score(t)` ordering:
//! `r_s = 1 − 6 Σ d² / (n (n² − 1))`. That formula assumes distinct ranks;
//! real weight lists have ties (many terms share `score(t) = 1`), so we
//! compute the equivalent general form — Pearson correlation of average
//! ranks — which reduces to the paper's formula when no ties exist.

/// Spearman's ρ between two equally long samples. Returns 0 for samples
/// shorter than 2 or with zero rank variance (all values tied).
pub fn spearman_rho(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must be parallel");
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let rx = average_ranks(x);
    let ry = average_ranks(y);
    pearson(&rx, &ry)
}

/// Average (fractional) ranks: ties receive the mean of the ranks they
/// span. Ranks are 1-based.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average of ranks i+1..=j+1.
        let avg = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
    let (mx, my) = (mean(x), mean(y));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_monotone_agreement() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman_rho(&x, &y) - 1.0).abs() < 1e-12);
        // Monotone but non-linear still gives 1.
        let y2 = [1.0, 8.0, 27.0, 64.0];
        assert!((spearman_rho(&x, &y2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_reversal() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((spearman_rho(&x, &y) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_textbook_formula_without_ties() {
        // d = rank differences: classic example.
        let x = [
            86.0, 97.0, 99.0, 100.0, 101.0, 103.0, 106.0, 110.0, 112.0, 113.0,
        ];
        let y = [0.0, 20.0, 28.0, 27.0, 50.0, 29.0, 7.0, 17.0, 6.0, 12.0];
        let rho = spearman_rho(&x, &y);
        assert!((rho - (-0.1757575)).abs() < 1e-4, "{rho}");
    }

    #[test]
    fn ties_use_average_ranks() {
        let r = average_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn constant_sample_gives_zero() {
        assert_eq!(spearman_rho(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn short_samples_give_zero() {
        assert_eq!(spearman_rho(&[], &[]), 0.0);
        assert_eq!(spearman_rho(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn independent_of_scale_and_shift() {
        let x = [3.0, 1.0, 4.0, 1.5, 5.0];
        let y = [2.0, 7.0, 1.0, 8.0, 2.5];
        let y_scaled: Vec<f64> = y.iter().map(|v| v * 100.0 + 5.0).collect();
        assert!((spearman_rho(&x, &y) - spearman_rho(&x, &y_scaled)).abs() < 1e-12);
    }
}
