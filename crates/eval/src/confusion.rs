//! Pairwise confusion counts and the derived P/R/F1 measures.

/// True/false positive and false negative counts for a pairwise matching
/// decision. True negatives are never needed by P/R/F1 and would be
/// enormous (all non-matching record pairs), so they are not tracked.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Predicted matches that are true matches.
    pub tp: usize,
    /// Predicted matches that are not true matches.
    pub fp: usize,
    /// True matches that were not predicted.
    pub fn_: usize,
}

impl ConfusionCounts {
    /// Creates counts directly.
    pub fn new(tp: usize, fp: usize, fn_: usize) -> Self {
        Self { tp, fp, fn_ }
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when there are no true matches.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 — the harmonic mean of precision and recall; 0 when either is 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let c = ConfusionCounts::new(10, 0, 0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn known_values() {
        let c = ConfusionCounts::new(8, 2, 4);
        assert!((c.precision() - 0.8).abs() < 1e-12);
        assert!((c.recall() - 8.0 / 12.0).abs() < 1e-12);
        let f1 = 2.0 * 0.8 * (8.0 / 12.0) / (0.8 + 8.0 / 12.0);
        assert!((c.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(ConfusionCounts::new(0, 0, 0).f1(), 0.0);
        assert_eq!(ConfusionCounts::new(0, 5, 0).precision(), 0.0);
        assert_eq!(ConfusionCounts::new(0, 0, 5).recall(), 0.0);
        assert_eq!(ConfusionCounts::new(0, 5, 5).f1(), 0.0);
    }

    #[test]
    fn f1_between_precision_and_recall() {
        let c = ConfusionCounts::new(6, 3, 1);
        let (p, r, f) = (c.precision(), c.recall(), c.f1());
        assert!(f >= p.min(r) && f <= p.max(r));
    }
}
