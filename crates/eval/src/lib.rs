//! # er-eval
//!
//! Evaluation harness for entity resolution:
//!
//! * [`confusion`] — pairwise precision / recall / F1 counts.
//! * [`pair_eval`] — scoring a predicted match set against ground truth.
//! * [`threshold`] — the paper's optimal-threshold protocol (§VII-C):
//!   quantize `[0, max score]` into 1 000 discrete values and pick the
//!   threshold with the highest F1, an upper bound on hand tuning.
//! * [`spearman`] — Spearman's rank correlation coefficient (Table IV),
//!   with average ranks for ties.
//! * [`term_score`] — the `score(t)` discriminativeness criterion of
//!   §VII-E (fraction of a term's incident record pairs that match).
//! * [`cluster`] — converting entity clusters to match pairs and back.
//! * [`closure`] — transitive-closure (clustering) evaluation: pairwise
//!   F1 over the clusters induced by the predicted matches, plus an
//!   incremental closure-aware threshold sweep.

#![deny(unsafe_code)]

pub mod closure;
pub mod cluster;
pub mod confusion;
pub mod pair_eval;
pub mod pr_curve;
pub mod spearman;
pub mod term_score;
pub mod threshold;

pub use closure::{evaluate_closure, sweep_threshold_closure, ClosureSweepResult, EntityLabels};
pub use cluster::{clusters_to_pairs, pairwise_f1_of_clusters};
pub use confusion::ConfusionCounts;
pub use pair_eval::{evaluate_pairs, TruthPairs};
pub use pr_curve::{average_precision, pr_curve, PrPoint};
pub use spearman::spearman_rho;
pub use term_score::{term_discriminativeness, term_score_series};
pub use threshold::{sweep_threshold, sweep_threshold_iter, ScoredPair, SweepResult};
