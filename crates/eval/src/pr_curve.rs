//! Precision–recall curves and average precision.
//!
//! The optimal-threshold sweep reports a single operating point; the
//! full PR curve characterizes a scorer across all of them — useful for
//! comparing matchers whose best F1 happens at very different recall
//! levels (e.g. CliqueRank's near-1 probabilities vs Jaccard's smooth
//! spectrum).

use crate::pair_eval::TruthPairs;
use crate::threshold::ScoredPair;

/// One point of a precision–recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Score threshold inducing this point (pairs ≥ threshold predicted).
    pub threshold: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
}

/// Computes the PR curve of scored pairs against the truth: one point per
/// distinct score, descending (recall non-decreasing along the result).
pub fn pr_curve(pairs: &[ScoredPair], truth: &TruthPairs) -> Vec<PrPoint> {
    let mut scored: Vec<(f64, bool)> = pairs
        .iter()
        .map(|p| {
            assert!(p.score.is_finite(), "non-finite score");
            (p.score, truth.is_match(p.a, p.b))
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite scores"));
    let total_true = truth.total();
    let mut curve = Vec::new();
    let mut tp = 0usize;
    let mut taken = 0usize;
    let mut i = 0;
    while i < scored.len() {
        // Consume the whole tie group at this score.
        let score = scored[i].0;
        while i < scored.len() && scored[i].0 == score {
            tp += usize::from(scored[i].1);
            taken += 1;
            i += 1;
        }
        if total_true > 0 {
            curve.push(PrPoint {
                threshold: score,
                precision: tp as f64 / taken as f64,
                recall: tp as f64 / total_true as f64,
            });
        }
    }
    curve
}

/// Average precision: the area under the PR curve computed as
/// `Σ (R_k − R_{k−1}) · P_k` over the curve points — the standard
/// rank-based AP.
pub fn average_precision(pairs: &[ScoredPair], truth: &TruthPairs) -> f64 {
    let curve = pr_curve(pairs, truth);
    let mut ap = 0.0;
    let mut prev_recall = 0.0;
    for point in &curve {
        ap += (point.recall - prev_recall) * point.precision;
        prev_recall = point.recall;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32, score: f64) -> ScoredPair {
        ScoredPair { a, b, score }
    }

    fn truth() -> TruthPairs {
        TruthPairs::from_pairs([(0, 1), (2, 3)])
    }

    #[test]
    fn perfect_ranking_has_ap_one() {
        let pairs = vec![
            pair(0, 1, 0.9),
            pair(2, 3, 0.8),
            pair(4, 5, 0.2),
            pair(6, 7, 0.1),
        ];
        assert!((average_precision(&pairs, &truth()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_low_ap() {
        let pairs = vec![
            pair(4, 5, 0.9),
            pair(6, 7, 0.8),
            pair(0, 1, 0.2),
            pair(2, 3, 0.1),
        ];
        let ap = average_precision(&pairs, &truth());
        assert!(ap < 0.5, "{ap}");
    }

    #[test]
    fn curve_recall_is_non_decreasing() {
        let pairs = vec![
            pair(0, 1, 0.9),
            pair(4, 5, 0.7),
            pair(2, 3, 0.5),
            pair(6, 7, 0.3),
        ];
        let curve = pr_curve(&pairs, &truth());
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
            assert!(w[1].threshold < w[0].threshold);
        }
        let last = curve.last().unwrap();
        assert!((last.recall - 1.0).abs() < 1e-12, "all pairs scored");
    }

    #[test]
    fn ties_are_grouped() {
        let pairs = vec![pair(0, 1, 0.5), pair(4, 5, 0.5), pair(2, 3, 0.5)];
        let curve = pr_curve(&pairs, &truth());
        assert_eq!(curve.len(), 1);
        assert!((curve[0].precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((curve[0].recall - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unscored_true_pairs_cap_recall() {
        let pairs = vec![pair(0, 1, 0.9)];
        let curve = pr_curve(&pairs, &truth());
        assert!((curve.last().unwrap().recall - 0.5).abs() < 1e-12);
        let ap = average_precision(&pairs, &truth());
        assert!((ap - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert!(pr_curve(&[], &truth()).is_empty());
        assert_eq!(average_precision(&[], &truth()), 0.0);
    }
}
