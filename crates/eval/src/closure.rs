//! Transitive-closure (clustering) evaluation and threshold sweep.
//!
//! Entity resolution's output is a clustering: records matched directly
//! *or through a chain of matches* belong to one entity (the clique
//! semantics of `G_r^opt`, §VI-A). Pairwise F1 over the induced clusters
//! therefore credits a method for pairs it connects transitively — and
//! punishes it doubly for false bridges, which merge whole clusters.
//!
//! [`sweep_threshold_closure`] finds the threshold maximizing closure F1.
//! It exploits monotonicity: lowering the threshold only ever adds edges,
//! so clusters grow by union operations. Each merge of clusters `A`, `B`
//! changes the closure counts by `|A|·|B|` predicted pairs, of which
//! `Σ_e cntA[e]·cntB[e]` are true — maintainable with small-to-large
//! merging of per-cluster entity histograms in `O(E log E + E log² n)`.

use std::collections::HashMap;

use crate::confusion::ConfusionCounts;
use crate::threshold::ScoredPair;

/// Ground truth as per-record entity labels (`labels[record] = entity`).
#[derive(Debug, Clone)]
pub struct EntityLabels {
    labels: Vec<u32>,
    total_true_pairs: usize,
}

impl EntityLabels {
    /// Builds from a label vector. `total_true_pairs` counts all
    /// within-entity pairs; for candidate-restricted universes (e.g.
    /// cross-source only) use [`EntityLabels::with_total`].
    pub fn new(labels: Vec<u32>) -> Self {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for &l in &labels {
            *counts.entry(l).or_default() += 1;
        }
        let total = counts.values().map(|&c| c * (c - 1) / 2).sum();
        Self {
            labels,
            total_true_pairs: total,
        }
    }

    /// Builds with an explicit ground-truth pair total (used when the
    /// candidate policy excludes some within-entity pairs, e.g. same-
    /// source pairs in a two-source dataset).
    pub fn with_total(labels: Vec<u32>, total_true_pairs: usize) -> Self {
        Self {
            labels,
            total_true_pairs,
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no records.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Entity label of a record.
    pub fn label(&self, record: u32) -> u32 {
        self.labels[record as usize]
    }

    /// Ground-truth matching-pair total used as the recall denominator.
    pub fn total_true_pairs(&self) -> usize {
        self.total_true_pairs
    }
}

/// Closure confusion counts for a fixed predicted match set.
pub fn evaluate_closure(
    matches: impl IntoIterator<Item = (u32, u32)>,
    labels: &EntityLabels,
) -> ConfusionCounts {
    let mut state = ClosureState::new(labels);
    for (a, b) in matches {
        state.union(a, b);
    }
    state.counts()
}

/// Result of a closure-aware threshold sweep.
#[derive(Debug, Clone, Copy)]
pub struct ClosureSweepResult {
    /// The threshold achieving the best closure F1 (`score >= threshold`
    /// edges are accepted).
    pub threshold: f64,
    /// Closure confusion counts at that threshold.
    pub counts: ConfusionCounts,
    /// Best closure F1.
    pub f1: f64,
}

/// Sweeps `quanta` equally spaced thresholds over `[0, max score]`,
/// evaluating each by transitive-closure pairwise F1, incrementally.
pub fn sweep_threshold_closure(
    pairs: &[ScoredPair],
    labels: &EntityLabels,
    quanta: usize,
) -> ClosureSweepResult {
    assert!(quanta >= 1, "need at least one quantum");
    let mut sorted: Vec<&ScoredPair> = pairs.iter().collect();
    for p in &sorted {
        assert!(
            p.score.is_finite(),
            "non-finite score for pair ({}, {})",
            p.a,
            p.b
        );
    }
    sorted.sort_by(|x, y| y.score.partial_cmp(&x.score).expect("finite scores"));
    let max_score = sorted.first().map_or(0.0, |p| p.score.max(0.0));

    let mut state = ClosureState::new(labels);
    let mut best = ClosureSweepResult {
        threshold: f64::INFINITY,
        counts: ConfusionCounts::new(0, 0, labels.total_true_pairs()),
        f1: 0.0,
    };
    let mut next_edge = 0usize;
    // Walk thresholds from high to low, adding edges as they qualify.
    for q in (0..=quanta).rev() {
        let threshold = max_score * q as f64 / quanta as f64;
        while next_edge < sorted.len() && sorted[next_edge].score >= threshold {
            state.union(sorted[next_edge].a, sorted[next_edge].b);
            next_edge += 1;
        }
        let counts = state.counts();
        let f1 = counts.f1();
        if f1 > best.f1 {
            best = ClosureSweepResult {
                threshold,
                counts,
                f1,
            };
        }
    }
    best
}

/// Incremental union-find tracking closure TP/FP via per-cluster entity
/// histograms (small-to-large merging).
struct ClosureState<'a> {
    labels: &'a EntityLabels,
    parent: Vec<u32>,
    /// Entity histogram per root.
    hist: Vec<HashMap<u32, usize>>,
    size: Vec<usize>,
    tp: usize,
    predicted: usize,
}

impl<'a> ClosureState<'a> {
    fn new(labels: &'a EntityLabels) -> Self {
        let n = labels.len();
        let hist = (0..n)
            .map(|r| {
                let mut m = HashMap::with_capacity(1);
                m.insert(labels.label(r as u32), 1usize);
                m
            })
            .collect();
        Self {
            labels,
            parent: (0..n as u32).collect(),
            hist,
            size: vec![1; n],
            tp: 0,
            predicted: 0,
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Merge the smaller histogram into the larger.
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        let small_hist = std::mem::take(&mut self.hist[small as usize]);
        let mut tp_delta = 0usize;
        {
            let big_hist = &mut self.hist[big as usize];
            for (&entity, &count) in &small_hist {
                if let Some(&big_count) = big_hist.get(&entity) {
                    tp_delta += big_count * count;
                }
            }
            for (entity, count) in small_hist {
                *big_hist.entry(entity).or_default() += count;
            }
        }
        let pairs_added = self.size[big as usize] * self.size[small as usize];
        self.tp += tp_delta;
        self.predicted += pairs_added;
        self.size[big as usize] += self.size[small as usize];
        self.parent[small as usize] = big;
    }

    fn counts(&self) -> ConfusionCounts {
        ConfusionCounts::new(
            self.tp,
            self.predicted - self.tp,
            self.labels.total_true_pairs() - self.tp,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32, score: f64) -> ScoredPair {
        ScoredPair { a, b, score }
    }

    /// Entities: {0,1,2}, {3,4}, {5}.
    fn labels() -> EntityLabels {
        EntityLabels::new(vec![10, 10, 10, 20, 20, 30])
    }

    #[test]
    fn total_true_pairs_counted() {
        assert_eq!(labels().total_true_pairs(), 4); // C(3,2) + C(2,2)
    }

    #[test]
    fn closure_credits_transitive_pairs() {
        // Only a spanning chain of the 3-cluster is predicted; closure
        // credits all 3 pairs.
        let c = evaluate_closure([(0, 1), (1, 2), (3, 4)], &labels());
        assert_eq!(c, ConfusionCounts::new(4, 0, 0));
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn false_bridge_is_punished_quadratically() {
        // The bridge (2, 3) merges both clusters: closure predicts all
        // C(5,2) = 10 pairs, only 4 true.
        let c = evaluate_closure([(0, 1), (1, 2), (3, 4), (2, 3)], &labels());
        assert_eq!(c.tp, 4);
        assert_eq!(c.fp, 6);
    }

    #[test]
    fn sweep_prefers_threshold_above_the_bridge() {
        let pairs = vec![
            pair(0, 1, 0.9),
            pair(1, 2, 0.85),
            pair(3, 4, 0.8),
            pair(2, 3, 0.5), // false bridge
        ];
        let r = sweep_threshold_closure(&pairs, &labels(), 1000);
        assert_eq!(r.f1, 1.0);
        assert!(r.threshold > 0.5 && r.threshold <= 0.8, "{}", r.threshold);
    }

    #[test]
    fn sweep_accepts_bridge_when_it_helps() {
        // Without the middle edge the chain is split; the sweep must take
        // the lower threshold that connects the true cluster.
        let pairs = vec![pair(0, 1, 0.9), pair(1, 2, 0.3), pair(3, 4, 0.8)];
        let r = sweep_threshold_closure(&pairs, &labels(), 1000);
        assert_eq!(r.counts.tp, 4);
        assert!(r.threshold <= 0.3);
    }

    #[test]
    fn incremental_matches_direct_evaluation() {
        let pairs = vec![
            pair(0, 1, 0.9),
            pair(2, 3, 0.7),
            pair(1, 2, 0.6),
            pair(4, 5, 0.4),
        ];
        let labels = labels();
        let r = sweep_threshold_closure(&pairs, &labels, 100);
        // Recompute directly at the chosen threshold.
        let direct = evaluate_closure(
            pairs
                .iter()
                .filter(|p| p.score >= r.threshold)
                .map(|p| (p.a, p.b)),
            &labels,
        );
        assert_eq!(r.counts, direct);
    }

    #[test]
    fn with_total_overrides_denominator() {
        let l = EntityLabels::with_total(vec![1, 1, 2, 2], 1);
        let c = evaluate_closure([(0, 1)], &l);
        assert_eq!(c, ConfusionCounts::new(1, 0, 0));
    }

    #[test]
    fn empty_inputs() {
        let l = EntityLabels::new(vec![]);
        assert!(l.is_empty());
        let r = sweep_threshold_closure(&[], &l, 10);
        assert_eq!(r.f1, 0.0);
    }
}
