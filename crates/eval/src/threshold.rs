//! The paper's optimal-threshold protocol (§VII-C).
//!
//! *"Our strategy is to quantize the domain `[0, max s(ri,rj)]` into 1000
//! discrete values and automatically select the threshold with the highest
//! F1-measure by computer programming, which is an upper bound of manually
//! tuned parameters."*
//!
//! The sweep sorts pairs by score once and evaluates all 1 000 candidate
//! thresholds with prefix sums: `O(P log P + Q)` for `P` scored pairs and
//! `Q` quanta.

use crate::confusion::ConfusionCounts;
use crate::pair_eval::TruthPairs;

/// A candidate pair with its matcher score.
#[derive(Debug, Clone, Copy)]
pub struct ScoredPair {
    /// One record of the pair.
    pub a: u32,
    /// The other record.
    pub b: u32,
    /// Matcher similarity score (need not be normalized).
    pub score: f64,
}

/// Outcome of a threshold sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepResult {
    /// The threshold achieving the best F1. Pairs with `score >= threshold`
    /// are predicted matches.
    pub threshold: f64,
    /// Confusion counts at that threshold.
    pub counts: ConfusionCounts,
    /// Best F1 (redundant with `counts.f1()`, kept for convenience).
    pub f1: f64,
}

/// Sweeps `quanta` equally spaced thresholds over `[0, max score]` and
/// returns the best-F1 operating point.
///
/// Unscored true pairs count as false negatives at every threshold. Pairs
/// with non-finite scores are rejected.
pub fn sweep_threshold(pairs: &[ScoredPair], truth: &TruthPairs, quanta: usize) -> SweepResult {
    sweep_threshold_iter(pairs.iter().map(|p| (p.a, p.b, p.score)), truth, quanta)
}

/// [`sweep_threshold`] over `(a, b, score)` triples — the zero-copy entry
/// point for callers that keep pair ids and scores in parallel slices
/// (the pooled baseline drivers) instead of materializing a
/// [`ScoredPair`] buffer per sweep.
pub fn sweep_threshold_iter(
    pairs: impl Iterator<Item = (u32, u32, f64)>,
    truth: &TruthPairs,
    quanta: usize,
) -> SweepResult {
    assert!(quanta >= 1, "need at least one quantum");
    let mut scored: Vec<(f64, bool)> = pairs
        .map(|(a, b, score)| {
            assert!(score.is_finite(), "non-finite score for pair ({a}, {b})");
            (score, truth.is_match(a, b))
        })
        .collect();
    // Sort descending by score.
    scored.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite scores"));
    let max_score = scored.first().map_or(0.0, |&(s, _)| s.max(0.0));
    // Prefix counts: taking the top-k pairs yields tp_prefix[k] true
    // positives.
    let mut tp_prefix = Vec::with_capacity(scored.len() + 1);
    tp_prefix.push(0usize);
    for &(_, is_match) in &scored {
        tp_prefix.push(tp_prefix.last().unwrap() + usize::from(is_match));
    }
    let total_true = truth.total();

    let mut best = SweepResult {
        threshold: f64::INFINITY,
        counts: ConfusionCounts::new(0, 0, total_true),
        f1: 0.0,
    };
    for q in 0..=quanta {
        let threshold = max_score * q as f64 / quanta as f64;
        // Number of pairs with score >= threshold: binary search on the
        // descending-sorted list for the first index with score < t.
        let k = scored.partition_point(|&(s, _)| s >= threshold);
        let tp = tp_prefix[k];
        let counts = ConfusionCounts::new(tp, k - tp, total_true - tp);
        let f1 = counts.f1();
        if f1 > best.f1 {
            best = SweepResult {
                threshold,
                counts,
                f1,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32, score: f64) -> ScoredPair {
        ScoredPair { a, b, score }
    }

    #[test]
    fn separable_scores_reach_perfect_f1() {
        let truth = TruthPairs::from_pairs([(0, 1), (2, 3)]);
        let pairs = vec![
            pair(0, 1, 0.9),
            pair(2, 3, 0.8),
            pair(0, 2, 0.2),
            pair(1, 3, 0.1),
        ];
        let r = sweep_threshold(&pairs, &truth, 1000);
        assert_eq!(r.f1, 1.0);
        assert!(r.threshold > 0.2 && r.threshold <= 0.8, "{}", r.threshold);
    }

    #[test]
    fn overlapping_scores_trade_off() {
        // One false pair scores above one true pair: perfect F1 impossible.
        let truth = TruthPairs::from_pairs([(0, 1), (2, 3)]);
        let pairs = vec![pair(0, 1, 0.9), pair(4, 5, 0.8), pair(2, 3, 0.7)];
        let r = sweep_threshold(&pairs, &truth, 1000);
        // Best: take all three (P=2/3, R=1) → F1 = 0.8.
        assert!((r.f1 - 0.8).abs() < 1e-9, "{}", r.f1);
    }

    #[test]
    fn unscored_true_pairs_hurt_recall() {
        let truth = TruthPairs::from_pairs([(0, 1), (8, 9)]);
        let pairs = vec![pair(0, 1, 1.0)];
        let r = sweep_threshold(&pairs, &truth, 100);
        assert_eq!(r.counts.fn_, 1);
        assert!((r.f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let truth = TruthPairs::from_pairs([(0, 1)]);
        let r = sweep_threshold(&[], &truth, 10);
        assert_eq!(r.f1, 0.0);
        let no_truth = TruthPairs::from_pairs(std::iter::empty::<(u32, u32)>());
        let r = sweep_threshold(&[pair(0, 1, 0.5)], &no_truth, 10);
        assert_eq!(r.f1, 0.0);
    }

    #[test]
    fn all_equal_scores() {
        let truth = TruthPairs::from_pairs([(0, 1)]);
        let pairs = vec![pair(0, 1, 0.5), pair(2, 3, 0.5)];
        let r = sweep_threshold(&pairs, &truth, 10);
        // Only option: take both → P=0.5, R=1 → F1 = 2/3.
        assert!((r.f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn more_quanta_never_worse() {
        let truth = TruthPairs::from_pairs([(0, 1), (2, 3), (4, 5)]);
        let pairs = vec![
            pair(0, 1, 0.91),
            pair(2, 3, 0.52),
            pair(4, 5, 0.13),
            pair(0, 3, 0.50),
            pair(1, 4, 0.12),
        ];
        let coarse = sweep_threshold(&pairs, &truth, 10);
        let fine = sweep_threshold(&pairs, &truth, 1000);
        assert!(fine.f1 >= coarse.f1 - 1e-12);
    }
}
