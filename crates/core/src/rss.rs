//! RSS — Random-Surfer Sampling (§VI-B, Algorithms 2–3).
//!
//! For every edge `(ri, rj)` of the record graph, RSS simulates `M`
//! rectified random walks (half starting from each endpoint) and
//! estimates `p(ri, rj)` as the fraction that reach the other endpoint
//! within `S` steps. The walk is rectified three ways:
//!
//! 1. **Non-linear transitions** (Eq. 11): the next node is drawn with
//!    probability ∝ `s(cur, next)^α`, championing high-similarity edges.
//! 2. **Target bonus** (Eq. 12): before each step, the edge toward the
//!    target is boosted by `(1 + b)` with `b ~ U(0, 1)` — without it, a
//!    walk inside a 192-record clique would need far more than `S` steps
//!    to hit one specific member.
//! 3. **Early stop**: stepping to a node that is not adjacent to the
//!    target means the surfer left the target's clique — fail immediately.
//!
//! RSS is `O(M · S · n³)` in the worst case; CliqueRank replaces it in
//! production. It is retained both as the reference the matrix form is
//! validated against and for the Table III speedup comparison.
//!
//! # Parallelism and determinism
//!
//! Edges are embarrassingly parallel: each edge's `M` walks touch only
//! that edge's probability slot. Every edge gets its own [`SmallRng`]
//! derived from `(config.seed, edge id)`, so the sampled walks do not
//! depend on which worker simulates which edge — the output is
//! bit-identical at every thread count (including 1), and a subset run
//! reproduces exactly the probabilities the full run assigns to the same
//! edges.
//!
//! The α-scaled transition powers `(s / (2 · rowmax))^α` depend only on
//! the graph, so they are computed once per run (`EdgePowers`) instead
//! of per step; a step then costs one `powf` (for the sampled bonus) plus
//! a multiply on the target entry, rather than `powf` per neighbor.

use er_graph::RecordGraph;
use er_pool::WorkerPool;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::RssConfig;

/// Result of an RSS run.
#[derive(Debug, Clone)]
pub struct RssOutcome {
    /// Estimated matching probability per edge, aligned with
    /// [`RecordGraph::pairs`].
    pub probabilities: Vec<f64>,
    /// Total walks simulated.
    pub walks: usize,
}

/// Runs RSS over every edge of `graph` (Algorithm 2), dispatching on
/// [`RssConfig::threads`].
pub fn run_rss(graph: &RecordGraph, config: &RssConfig) -> RssOutcome {
    let all: Vec<u32> = (0..graph.pairs().len() as u32).collect();
    run_rss_subset(graph, config, &all)
}

/// Runs RSS over every edge using an existing worker pool.
pub fn run_rss_pooled(graph: &RecordGraph, config: &RssConfig, pool: &WorkerPool) -> RssOutcome {
    let all: Vec<u32> = (0..graph.pairs().len() as u32).collect();
    run_rss_subset_pooled(graph, config, &all, pool)
}

/// Runs RSS for a subset of edges (by index into [`RecordGraph::pairs`]).
///
/// Walks still traverse the full graph; only the sampled edges are
/// estimated. The Table III bench uses this to extrapolate RSS's running
/// time on dense graphs where the full `O(M · S · n³)` simulation is
/// impractical — the very point the paper's speedup comparison makes.
///
/// `config.threads > 1` spins up a transient pool; callers with a pool of
/// their own should use [`run_rss_subset_pooled`] directly.
pub fn run_rss_subset(graph: &RecordGraph, config: &RssConfig, edges: &[u32]) -> RssOutcome {
    validate(config);
    if config.threads <= 1 {
        let _span = er_obs::span("rss");
        let powers = EdgePowers::build(graph, config.alpha);
        let mut probabilities = vec![0.0f64; edges.len()];
        estimate_edges(graph, config, &powers, edges, &mut probabilities);
        let half = config.walks_per_edge / 2;
        er_obs::counter_add("rss_edges_total", edges.len() as u64);
        er_obs::counter_add("rss_walks_total", (edges.len() * 2 * half) as u64);
        RssOutcome {
            probabilities,
            walks: edges.len() * 2 * half,
        }
    } else {
        let pool = WorkerPool::new(config.threads);
        run_rss_subset_pooled(graph, config, edges, &pool)
    }
}

/// Pool-backed [`run_rss_subset`]: edge chunks become pool jobs, each
/// writing its own disjoint slice of the probability vector. Per-edge
/// seeding makes the result bit-identical to the serial path.
pub fn run_rss_subset_pooled(
    graph: &RecordGraph,
    config: &RssConfig,
    edges: &[u32],
    pool: &WorkerPool,
) -> RssOutcome {
    validate(config);
    let _span = er_obs::span("rss");
    let powers = EdgePowers::build(graph, config.alpha);
    let mut probabilities = vec![0.0f64; edges.len()];
    // Work estimate: every edge runs `walks_per_edge` walks of up to
    // `steps` hops; sub-cutover subsets run inline on the caller.
    let work = edges
        .len()
        .saturating_mul(config.walks_per_edge)
        .saturating_mul(config.steps);
    if pool.dispatch(work).is_parallel() {
        // ~16 edges per job keeps scheduling overhead negligible while
        // still load-balancing walks whose cost varies with clique size.
        let ranges = er_pool::chunk_ranges(edges.len(), pool.threads() * 4, 16);
        let powers = &powers;
        pool.scope(|s| {
            let mut rest: &mut [f64] = &mut probabilities;
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let edge_ids = &edges[range];
                s.submit(move || estimate_edges(graph, config, powers, edge_ids, chunk));
            }
        });
    } else {
        estimate_edges(graph, config, &powers, edges, &mut probabilities);
    }
    let half = config.walks_per_edge / 2;
    er_obs::counter_add("rss_edges_total", edges.len() as u64);
    er_obs::counter_add("rss_walks_total", (edges.len() * 2 * half) as u64);
    RssOutcome {
        probabilities,
        walks: edges.len() * 2 * half,
    }
}

fn validate(config: &RssConfig) {
    assert!(config.alpha > 0.0, "alpha must be positive");
    assert!(config.steps >= 1, "need at least one step");
    assert!(
        config.walks_per_edge >= 2,
        "need at least one walk per direction"
    );
}

/// Simulates all walks for `edge_ids`, writing one probability per edge
/// into `out`. Each edge draws from its own RNG seeded by
/// `(config.seed, edge id)`, so the result does not depend on how edges
/// are grouped into calls.
fn estimate_edges(
    graph: &RecordGraph,
    config: &RssConfig,
    powers: &EdgePowers,
    edge_ids: &[u32],
    out: &mut [f64],
) {
    debug_assert_eq!(edge_ids.len(), out.len());
    let half = config.walks_per_edge / 2;
    for (&e, slot) in edge_ids.iter().zip(out) {
        let pair = graph.pairs()[e as usize];
        let mut rng = SmallRng::seed_from_u64(edge_seed(config.seed, e));
        let mut successes = 0usize;
        for _ in 0..half {
            successes += random_walk(graph, powers, pair.a, pair.b, config, &mut rng);
            successes += random_walk(graph, powers, pair.b, pair.a, config, &mut rng);
        }
        *slot = successes as f64 / (2 * half) as f64;
    }
}

/// Mixes the run seed with the edge id (splitmix64-style odd multiplier)
/// so adjacent edges get uncorrelated RNG streams.
fn edge_seed(seed: u64, edge_id: u32) -> u64 {
    seed ^ (edge_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Precomputed α-scaled transition weights, aligned with the record
/// graph's adjacency: `pow[k] = (s_k / (2 · rowmax))^α` for the k-th
/// directed edge, plus each row's weight sum. Shared read-only by all
/// walk workers; replaces a `powf` per neighbor per step with one table
/// lookup.
struct EdgePowers {
    /// CSR-style row offsets into `pow` (`n + 1` entries).
    offsets: Vec<usize>,
    /// Per-directed-edge α-scaled weight, in adjacency order.
    pow: Vec<f64>,
    /// Per-node sum of that row's entries of `pow`.
    row_sum: Vec<f64>,
}

impl EdgePowers {
    fn build(graph: &RecordGraph, alpha: f64) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut pow = Vec::new();
        let mut row_sum = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let (_, sims) = graph.neighbors(u);
            // Same scaling as the original per-step computation: divide by
            // twice the row maximum before exponentiating so α = 20 cannot
            // overflow regardless of similarity magnitudes (the scaling
            // cancels in the sampling normalization).
            let max_sim = sims.iter().fold(0.0f64, |m, &v| m.max(v)) * 2.0;
            let mut sum = 0.0;
            for &sim in sims {
                let w = (sim / max_sim).powf(alpha);
                pow.push(w);
                sum += w;
            }
            offsets.push(pow.len());
            row_sum.push(sum);
        }
        Self {
            offsets,
            pow,
            row_sum,
        }
    }

    #[inline]
    fn row(&self, u: u32) -> &[f64] {
        &self.pow[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }
}

/// One rectified random walk (Algorithm 3). Returns 1 on reaching
/// `target` within `config.steps` steps, 0 otherwise.
fn random_walk(
    graph: &RecordGraph,
    powers: &EdgePowers,
    start: u32,
    target: u32,
    config: &RssConfig,
    rng: &mut SmallRng,
) -> usize {
    let mut cur = start;
    for _ in 0..config.steps {
        let (neighbors, _) = graph.neighbors(cur);
        debug_assert!(!neighbors.is_empty(), "walk node must have neighbors");
        let row = powers.row(cur);
        // Line 3–4: random bonus on the edge toward the target. Drawn
        // unconditionally (when enabled) so the per-walk RNG stream does
        // not depend on the current node's adjacency.
        let bonus: f64 = if config.boost {
            1.0 + rng.random_range(0.0..1.0)
        } else {
            1.0
        };
        // Transition weights ∝ (boosted similarity)^α (Eq. 11–12). The
        // unboosted powers come from the precomputed table; only the
        // target entry needs a fresh powf for the sampled bonus.
        let target_pos = neighbors.binary_search(&target).ok();
        let (bonus_pow, total) = match target_pos {
            Some(tp) if config.boost => {
                let bp = bonus.powf(config.alpha);
                (bp, powers.row_sum[cur as usize] + (bp - 1.0) * row[tp])
            }
            _ => (1.0, powers.row_sum[cur as usize]),
        };
        if total <= 0.0 {
            return 0;
        }
        // Line 5: sample the next node.
        let mut draw = rng.random_range(0.0..total);
        let mut chosen = neighbors.len() - 1;
        for (i, &w0) in row.iter().enumerate() {
            let w = if Some(i) == target_pos {
                bonus_pow * w0
            } else {
                w0
            };
            if draw < w {
                chosen = i;
                break;
            }
            draw -= w;
        }
        let next = neighbors[chosen];
        // Lines 6–7: success.
        if next == target {
            return 1;
        }
        // Lines 8–9: early stop on leaving the target's neighborhood.
        if config.early_stop && !graph.has_edge(next, target) {
            return 0;
        }
        cur = next;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::bipartite::PairNode;

    fn pairs(ps: &[(u32, u32)]) -> Vec<PairNode> {
        ps.iter().map(|&(a, b)| PairNode::new(a, b)).collect()
    }

    /// Two tight cliques {0,1,2} and {3,4}, joined by one weak edge 2–3.
    fn two_cliques() -> RecordGraph {
        let p = pairs(&[(0, 1), (0, 2), (1, 2), (3, 4), (2, 3)]);
        let s = [1.0, 1.0, 1.0, 1.0, 0.05];
        RecordGraph::from_pair_scores(5, &p, &s)
    }

    fn edge_prob(g: &RecordGraph, out: &RssOutcome, a: u32, b: u32) -> f64 {
        let idx = g
            .pairs()
            .iter()
            .position(|p| *p == PairNode::new(a, b))
            .expect("edge present");
        out.probabilities[idx]
    }

    #[test]
    fn clique_members_reach_each_other() {
        let g = two_cliques();
        let out = run_rss(&g, &RssConfig::default());
        assert!(edge_prob(&g, &out, 0, 1) > 0.9, "{out:?}");
        assert!(edge_prob(&g, &out, 3, 4) > 0.9);
    }

    #[test]
    fn weak_bridge_scores_low() {
        let g = two_cliques();
        let out = run_rss(&g, &RssConfig::default());
        let bridge = edge_prob(&g, &out, 2, 3);
        let clique = edge_prob(&g, &out, 0, 1);
        assert!(
            bridge < clique - 0.3,
            "bridge {bridge} should be well below clique edge {clique}"
        );
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let g = two_cliques();
        let out = run_rss(&g, &RssConfig::default());
        for &p in &out.probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(out.walks, g.pairs().len() * 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = two_cliques();
        let a = run_rss(&g, &RssConfig::default());
        let b = run_rss(&g, &RssConfig::default());
        assert_eq!(a.probabilities, b.probabilities);
    }

    #[test]
    fn boost_rescues_large_cliques() {
        // A 24-clique with uniform weights: without the bonus, hitting one
        // specific member within S=8 steps is unlikely; with it, near-certain.
        let n = 24u32;
        let mut p = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                p.push((i, j));
            }
        }
        let pr = pairs(&p);
        let s = vec![1.0; pr.len()];
        let g = RecordGraph::from_pair_scores(n as usize, &pr, &s);
        let base = RssConfig {
            steps: 8,
            walks_per_edge: 50,
            ..Default::default()
        };
        let with = run_rss(&g, &base);
        let without = run_rss(
            &g,
            &RssConfig {
                boost: false,
                ..base
            },
        );
        let mean =
            |o: &RssOutcome| o.probabilities.iter().sum::<f64>() / o.probabilities.len() as f64;
        assert!(
            mean(&with) > mean(&without) + 0.2,
            "boost {} must clearly beat no-boost {}",
            mean(&with),
            mean(&without)
        );
        assert!(mean(&with) > 0.8, "{}", mean(&with));
    }

    #[test]
    fn corner_case_single_edge_component() {
        // A node with exactly one neighbor always walks to it — the paper's
        // corner case motivating bi-directional walks. Probability 1.
        let g = RecordGraph::from_pair_scores(2, &pairs(&[(0, 1)]), &[0.3]);
        let out = run_rss(&g, &RssConfig::default());
        assert_eq!(out.probabilities, vec![1.0]);
    }

    #[test]
    fn early_stop_reduces_cross_clique_probability() {
        let g = two_cliques();
        let base = RssConfig::default();
        let with = run_rss(&g, &base);
        let without = run_rss(
            &g,
            &RssConfig {
                early_stop: false,
                ..base
            },
        );
        let bridge_with = edge_prob(&g, &with, 2, 3);
        let bridge_without = edge_prob(&g, &without, 2, 3);
        assert!(bridge_with <= bridge_without + 0.05);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        let g = two_cliques();
        let serial = run_rss(
            &g,
            &RssConfig {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [2, 3, 4] {
            let parallel = run_rss(
                &g,
                &RssConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                serial.probabilities, parallel.probabilities,
                "threads={threads}"
            );
            assert_eq!(serial.walks, parallel.walks);
        }
    }

    #[test]
    fn subset_reproduces_full_run_per_edge() {
        // Per-edge seeding: estimating a subset must give exactly the
        // probabilities the full run assigns to those edges.
        let g = two_cliques();
        let config = RssConfig {
            threads: 1,
            ..Default::default()
        };
        let full = run_rss(&g, &config);
        let subset = [3u32, 0, 4];
        let out = run_rss_subset(&g, &config, &subset);
        for (i, &e) in subset.iter().enumerate() {
            assert_eq!(out.probabilities[i], full.probabilities[e as usize]);
        }
    }

    #[test]
    fn pooled_entry_point_matches_dispatch() {
        let g = two_cliques();
        let config = RssConfig::default();
        let pool = er_pool::WorkerPool::new(3);
        let pooled = run_rss_pooled(&g, &config, &pool);
        let dispatched = run_rss(&g, &config);
        assert_eq!(pooled.probabilities, dispatched.probabilities);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let g = two_cliques();
        run_rss(
            &g,
            &RssConfig {
                alpha: 0.0,
                ..Default::default()
            },
        );
    }
}
