//! RSS — Random-Surfer Sampling (§VI-B, Algorithms 2–3).
//!
//! For every edge `(ri, rj)` of the record graph, RSS simulates `M`
//! rectified random walks (half starting from each endpoint) and
//! estimates `p(ri, rj)` as the fraction that reach the other endpoint
//! within `S` steps. The walk is rectified three ways:
//!
//! 1. **Non-linear transitions** (Eq. 11): the next node is drawn with
//!    probability ∝ `s(cur, next)^α`, championing high-similarity edges.
//! 2. **Target bonus** (Eq. 12): before each step, the edge toward the
//!    target is boosted by `(1 + b)` with `b ~ U(0, 1)` — without it, a
//!    walk inside a 192-record clique would need far more than `S` steps
//!    to hit one specific member.
//! 3. **Early stop**: stepping to a node that is not adjacent to the
//!    target means the surfer left the target's clique — fail immediately.
//!
//! RSS is `O(M · S · n³)` in the worst case; CliqueRank replaces it in
//! production. It is retained both as the reference the matrix form is
//! validated against and for the Table III speedup comparison.

use er_graph::RecordGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::RssConfig;

/// Result of an RSS run.
#[derive(Debug, Clone)]
pub struct RssOutcome {
    /// Estimated matching probability per edge, aligned with
    /// [`RecordGraph::pairs`].
    pub probabilities: Vec<f64>,
    /// Total walks simulated.
    pub walks: usize,
}

/// Runs RSS over every edge of `graph` (Algorithm 2).
pub fn run_rss(graph: &RecordGraph, config: &RssConfig) -> RssOutcome {
    let all: Vec<u32> = (0..graph.pairs().len() as u32).collect();
    run_rss_subset(graph, config, &all)
}

/// Runs RSS for a subset of edges (by index into [`RecordGraph::pairs`]).
///
/// Walks still traverse the full graph; only the sampled edges are
/// estimated. The Table III bench uses this to extrapolate RSS's running
/// time on dense graphs where the full `O(M · S · n³)` simulation is
/// impractical — the very point the paper's speedup comparison makes.
pub fn run_rss_subset(graph: &RecordGraph, config: &RssConfig, edges: &[u32]) -> RssOutcome {
    assert!(config.alpha > 0.0, "alpha must be positive");
    assert!(config.steps >= 1, "need at least one step");
    assert!(config.walks_per_edge >= 2, "need at least one walk per direction");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let half = config.walks_per_edge / 2;
    let mut probabilities = Vec::with_capacity(edges.len());
    let mut walks = 0usize;
    let mut scratch = WalkScratch::default();
    for &e in edges {
        let pair = graph.pairs()[e as usize];
        let mut successes = 0usize;
        for _ in 0..half {
            successes += random_walk(graph, pair.a, pair.b, config, &mut rng, &mut scratch);
            successes += random_walk(graph, pair.b, pair.a, config, &mut rng, &mut scratch);
            walks += 2;
        }
        probabilities.push(successes as f64 / (2 * half) as f64);
    }
    RssOutcome {
        probabilities,
        walks,
    }
}

/// Reusable buffers for transition-weight computation.
#[derive(Default)]
struct WalkScratch {
    weights: Vec<f64>,
}

/// One rectified random walk (Algorithm 3). Returns 1 on reaching
/// `target` within `config.steps` steps, 0 otherwise.
fn random_walk(
    graph: &RecordGraph,
    start: u32,
    target: u32,
    config: &RssConfig,
    rng: &mut SmallRng,
    scratch: &mut WalkScratch,
) -> usize {
    let mut cur = start;
    for _ in 0..config.steps {
        let (neighbors, sims) = graph.neighbors(cur);
        debug_assert!(!neighbors.is_empty(), "walk node must have neighbors");
        // Line 3–4: random bonus on the edge toward the target.
        let bonus = if config.boost {
            1.0 + rng.random_range(0.0..1.0)
        } else {
            1.0
        };
        // Transition weights ∝ (boosted similarity)^α. Similarities are
        // scaled by the row maximum before exponentiation so α = 20 cannot
        // overflow regardless of the similarity magnitudes ITER produces
        // (the scaling cancels in the normalization).
        let max_sim = sims.iter().fold(0.0f64, |m, &v| m.max(v)) * 2.0;
        scratch.weights.clear();
        scratch.weights.reserve(neighbors.len());
        let mut total = 0.0;
        for (&nb, &sim) in neighbors.iter().zip(sims) {
            let boosted = if nb == target { bonus * sim } else { sim };
            let w = (boosted / max_sim).powf(config.alpha);
            scratch.weights.push(w);
            total += w;
        }
        if total <= 0.0 {
            return 0;
        }
        // Line 5: sample the next node.
        let mut draw = rng.random_range(0.0..total);
        let mut chosen = neighbors.len() - 1;
        for (i, &w) in scratch.weights.iter().enumerate() {
            if draw < w {
                chosen = i;
                break;
            }
            draw -= w;
        }
        let next = neighbors[chosen];
        // Lines 6–7: success.
        if next == target {
            return 1;
        }
        // Lines 8–9: early stop on leaving the target's neighborhood.
        if config.early_stop && !graph.has_edge(next, target) {
            return 0;
        }
        cur = next;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::bipartite::PairNode;

    fn pairs(ps: &[(u32, u32)]) -> Vec<PairNode> {
        ps.iter().map(|&(a, b)| PairNode::new(a, b)).collect()
    }

    /// Two tight cliques {0,1,2} and {3,4}, joined by one weak edge 2–3.
    fn two_cliques() -> RecordGraph {
        let p = pairs(&[(0, 1), (0, 2), (1, 2), (3, 4), (2, 3)]);
        let s = [1.0, 1.0, 1.0, 1.0, 0.05];
        RecordGraph::from_pair_scores(5, &p, &s)
    }

    fn edge_prob(g: &RecordGraph, out: &RssOutcome, a: u32, b: u32) -> f64 {
        let idx = g
            .pairs()
            .iter()
            .position(|p| *p == PairNode::new(a, b))
            .expect("edge present");
        out.probabilities[idx]
    }

    #[test]
    fn clique_members_reach_each_other() {
        let g = two_cliques();
        let out = run_rss(&g, &RssConfig::default());
        assert!(edge_prob(&g, &out, 0, 1) > 0.9, "{out:?}");
        assert!(edge_prob(&g, &out, 3, 4) > 0.9);
    }

    #[test]
    fn weak_bridge_scores_low() {
        let g = two_cliques();
        let out = run_rss(&g, &RssConfig::default());
        let bridge = edge_prob(&g, &out, 2, 3);
        let clique = edge_prob(&g, &out, 0, 1);
        assert!(
            bridge < clique - 0.3,
            "bridge {bridge} should be well below clique edge {clique}"
        );
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let g = two_cliques();
        let out = run_rss(&g, &RssConfig::default());
        for &p in &out.probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(out.walks, g.pairs().len() * 100);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = two_cliques();
        let a = run_rss(&g, &RssConfig::default());
        let b = run_rss(&g, &RssConfig::default());
        assert_eq!(a.probabilities, b.probabilities);
    }

    #[test]
    fn boost_rescues_large_cliques() {
        // A 24-clique with uniform weights: without the bonus, hitting one
        // specific member within S=8 steps is unlikely; with it, near-certain.
        let n = 24u32;
        let mut p = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                p.push((i, j));
            }
        }
        let pr = pairs(&p);
        let s = vec![1.0; pr.len()];
        let g = RecordGraph::from_pair_scores(n as usize, &pr, &s);
        let base = RssConfig {
            steps: 8,
            walks_per_edge: 50,
            ..Default::default()
        };
        let with = run_rss(&g, &base);
        let without = run_rss(
            &g,
            &RssConfig {
                boost: false,
                ..base
            },
        );
        let mean = |o: &RssOutcome| {
            o.probabilities.iter().sum::<f64>() / o.probabilities.len() as f64
        };
        assert!(
            mean(&with) > mean(&without) + 0.2,
            "boost {} must clearly beat no-boost {}",
            mean(&with),
            mean(&without)
        );
        assert!(mean(&with) > 0.8, "{}", mean(&with));
    }

    #[test]
    fn corner_case_single_edge_component() {
        // A node with exactly one neighbor always walks to it — the paper's
        // corner case motivating bi-directional walks. Probability 1.
        let g = RecordGraph::from_pair_scores(2, &pairs(&[(0, 1)]), &[0.3]);
        let out = run_rss(&g, &RssConfig::default());
        assert_eq!(out.probabilities, vec![1.0]);
    }

    #[test]
    fn early_stop_reduces_cross_clique_probability() {
        let g = two_cliques();
        let base = RssConfig::default();
        let with = run_rss(&g, &base);
        let without = run_rss(
            &g,
            &RssConfig {
                early_stop: false,
                ..base
            },
        );
        let bridge_with = edge_prob(&g, &with, 2, 3);
        let bridge_without = edge_prob(&g, &without, 2, 3);
        assert!(bridge_with <= bridge_without + 0.05);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let g = two_cliques();
        run_rss(
            &g,
            &RssConfig {
                alpha: 0.0,
                ..Default::default()
            },
        );
    }
}
