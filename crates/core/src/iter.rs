//! ITER — Iterative Term-Entity Ranking (§V, Algorithm 1).
//!
//! On the bipartite graph between terms and record-pair nodes, ITER
//! alternates two propagation rules until the term weights converge:
//!
//! * pair update (Eq. 7): `s(ri, rj) ← Σ_{t ∈ ri ∧ t ∈ rj} x_t`
//! * term update (Eq. 6): `x_t ← Σ_{(ri,rj) ∋ t} p(ri, rj) · s(ri, rj) / P_t`
//!
//! followed by the normalization `x_t ← 1 / (1 + 1/x_t)` (line 7). The
//! `P_t` denominator is the decisive difference from PageRank-style
//! propagation: it dilutes common terms by the number of pairs they touch,
//! which is exactly what makes `x_t` estimate discrimination power rather
//! than hub centrality (§V-C).
//!
//! The matching probability `p(ri, rj)` enters as the bipartite edge
//! weight — uniform 1 on the first fusion round, CliqueRank's output on
//! later rounds.
//!
//! # Parallelism and determinism
//!
//! Both propagation rules are elementwise: each pair similarity depends
//! only on the previous term weights, and each term weight only on the
//! fresh similarities. The parallel path therefore splits the output
//! vectors into disjoint CSR ranges — one pool job per range — while the
//! scalar reductions (L2 norm, convergence delta) stay serial, so every
//! thread count produces bit-identical weights. The two iteration
//! vectors (`x`, `new_x`) are allocated once and swapped per iteration
//! instead of reallocating `new_x` every pass.

use std::mem;

use er_graph::BipartiteGraph;
use er_pool::WorkerPool;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{IterConfig, Normalization};

/// Minimum terms/pairs per pool job; below this, scheduling overhead
/// exceeds the loop body.
const MIN_CHUNK: usize = 512;

/// Reusable buffers for [`run_iter_with_init_scratch`].
///
/// An ITER run needs four working vectors (`x`, `new_x`, `s`, `deltas`).
/// Three of them leave the run inside the [`IterOutcome`]; the scratch
/// keeps the fourth, and [`IterScratch::recycle`] puts a consumed
/// outcome's vectors back. A caller that recycles the previous round's
/// outcome before the next run (as the fusion loop does) therefore runs
/// every ITER sweep after the first with zero steady-state allocations.
#[derive(Debug, Default)]
pub struct IterScratch {
    x: Vec<f64>,
    new_x: Vec<f64>,
    s: Vec<f64>,
    deltas: Vec<f64>,
}

impl IterScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a consumed outcome's vectors to the scratch so the next
    /// run reuses their capacity.
    pub fn recycle(&mut self, outcome: IterOutcome) {
        self.x = outcome.term_weights;
        self.s = outcome.pair_similarities;
        self.deltas = outcome.deltas;
    }
}

/// Result of one ITER run.
#[derive(Debug, Clone)]
pub struct IterOutcome {
    /// Learned discrimination power `x_t` per term (0 for terms with no
    /// incident pair, i.e. `P_t = 0`). Normalized into `(0, 1)`.
    pub term_weights: Vec<f64>,
    /// Learned similarity `s(ri, rj)` per pair node, aligned with
    /// [`BipartiteGraph::pairs`].
    pub pair_similarities: Vec<f64>,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
    /// Per-iteration L1 change of the term-weight vector — the trace
    /// behind Figure 5.
    pub deltas: Vec<f64>,
    /// True when the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Runs ITER.
///
/// * `graph` — the term ↔ pair bipartite graph.
/// * `edge_prob` — `p(ri, rj)` per pair node (the edge weight shared by
///   all edges incident to that pair node), aligned with
///   [`BipartiteGraph::pairs`]. Pass all-ones for the first fusion round.
///
/// # Panics
/// If `edge_prob` is not aligned with the graph's pair nodes, or contains
/// values outside `[0, 1]`.
pub fn run_iter(graph: &BipartiteGraph, edge_prob: &[f64], config: &IterConfig) -> IterOutcome {
    run_iter_with_init(graph, edge_prob, config, None)
}

/// [`run_iter`] on an existing worker pool (pipeline callers share one
/// pool across all phases instead of spinning one up per round).
pub fn run_iter_pooled(
    graph: &BipartiteGraph,
    edge_prob: &[f64],
    config: &IterConfig,
    pool: &WorkerPool,
) -> IterOutcome {
    run_iter_with_init_pooled(graph, edge_prob, config, None, pool)
}

/// [`run_iter`] with an optional warm start: `init[t]` seeds the weight
/// of term `t` (values outside `(0, 1)` or for terms with `P_t = 0` are
/// ignored). Theorem 1 guarantees the same fixed point from any
/// non-degenerate start; a warm start near it just converges in fewer
/// iterations — the incremental-resolution path uses the previous run's
/// weights here.
pub fn run_iter_with_init(
    graph: &BipartiteGraph,
    edge_prob: &[f64],
    config: &IterConfig,
    init: Option<&[f64]>,
) -> IterOutcome {
    let mut scratch = IterScratch::default();
    run_iter_with_init_scratch(graph, edge_prob, config, init, &mut scratch)
}

/// [`run_iter_with_init`] on caller-owned scratch buffers — the
/// zero-allocation entry point for repeated runs.
pub fn run_iter_with_init_scratch(
    graph: &BipartiteGraph,
    edge_prob: &[f64],
    config: &IterConfig,
    init: Option<&[f64]>,
    scratch: &mut IterScratch,
) -> IterOutcome {
    if config.threads <= 1 {
        iter_impl(graph, edge_prob, config, init, None, scratch)
    } else {
        let pool = WorkerPool::new(config.threads);
        iter_impl(graph, edge_prob, config, init, Some(&pool), scratch)
    }
}

/// [`run_iter_with_init`] on an existing worker pool.
pub fn run_iter_with_init_pooled(
    graph: &BipartiteGraph,
    edge_prob: &[f64],
    config: &IterConfig,
    init: Option<&[f64]>,
    pool: &WorkerPool,
) -> IterOutcome {
    let mut scratch = IterScratch::default();
    iter_impl(graph, edge_prob, config, init, Some(pool), &mut scratch)
}

/// [`run_iter_with_init_pooled`] on caller-owned scratch buffers.
pub fn run_iter_with_init_pooled_scratch(
    graph: &BipartiteGraph,
    edge_prob: &[f64],
    config: &IterConfig,
    init: Option<&[f64]>,
    pool: &WorkerPool,
    scratch: &mut IterScratch,
) -> IterOutcome {
    iter_impl(graph, edge_prob, config, init, Some(pool), scratch)
}

fn iter_impl(
    graph: &BipartiteGraph,
    edge_prob: &[f64],
    config: &IterConfig,
    init: Option<&[f64]>,
    pool: Option<&WorkerPool>,
    scratch: &mut IterScratch,
) -> IterOutcome {
    assert_eq!(
        edge_prob.len(),
        graph.pair_count(),
        "edge_prob must hold one probability per pair node"
    );
    for (i, &p) in edge_prob.iter().enumerate() {
        assert!((0.0..=1.0).contains(&p), "p out of [0,1] for pair {i}: {p}");
    }
    let n_terms = graph.term_count();
    let n_pairs = graph.pair_count();

    // One dispatch decision per run: both sweep halves walk every
    // (term, pair) edge, so the posting count estimates the per-sweep
    // work. Below the cutover the pool is dropped here and the whole
    // loop — sweeps and double-buffer swaps — runs inline with zero
    // coordination (restaurant/cora-sized graphs lost more to scope
    // bookkeeping per iteration than the chunks earned back).
    let pool = pool.filter(|p| p.dispatch(graph.edge_count()).is_parallel());

    // Line 1: random initialization of x_t in (0, 1), overridden by the
    // warm start where provided. Terms with P_t = 0 never receive mass
    // and stay 0. The working vectors come from the scratch so repeat
    // runs reuse their capacity.
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut x = mem::take(&mut scratch.x);
    x.clear();
    x.extend((0..n_terms).map(|t| {
        if graph.pt(t as u32) == 0 {
            return 0.0;
        }
        if let Some(init) = init {
            if let Some(&w) = init.get(t) {
                if w > 0.0 && w < 1.0 {
                    return w;
                }
            }
        }
        rng.random_range(0.01..1.0)
    }));

    let mut s = mem::take(&mut scratch.s);
    s.clear();
    s.resize(n_pairs, 0.0);
    // Double buffer for the term weights: swapped with `x` each
    // iteration instead of allocating a fresh vector per pass.
    let mut new_x = mem::take(&mut scratch.new_x);
    new_x.clear();
    new_x.resize(n_terms, 0.0);
    let mut deltas = mem::take(&mut scratch.deltas);
    deltas.clear();
    let mut converged = false;
    let mut iterations = 0;

    while iterations < config.max_iterations {
        iterations += 1;
        let _sweep = er_obs::span("sweep");
        // Line 3–4: pair similarities from current term weights.
        update_similarities(graph, &x, &mut s, pool);
        // Line 5–7: term weights from pair similarities, then normalize.
        // The convergence delta is measured on the *normalized* weights —
        // those are what the fixed point is defined over.
        update_terms(graph, edge_prob, &s, config.normalization, &mut new_x, pool);
        if config.normalization == Normalization::L2 {
            let norm: f64 = new_x.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in &mut new_x {
                    *v /= norm;
                }
            }
        }
        let delta: f64 = x
            .iter()
            .zip(&new_x)
            .map(|(old, new)| (old - new).abs())
            .sum();
        mem::swap(&mut x, &mut new_x);
        deltas.push(delta);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    // Final similarities from the converged weights, so callers see a
    // consistent (x, s) fixed-point pair.
    update_similarities(graph, &x, &mut s, pool);

    // `x`, `s`, `deltas` leave inside the outcome (and come back via
    // `IterScratch::recycle`); the spare double buffer stays here.
    scratch.new_x = new_x;
    IterOutcome {
        term_weights: x,
        pair_similarities: s,
        iterations,
        deltas,
        converged,
    }
}

/// Pair update (Eq. 7) over pair range `p_start..p_start + out.len()`,
/// writing into the matching slice of the similarity vector.
// er-lint: zero-alloc
fn similarities_range(graph: &BipartiteGraph, x: &[f64], out: &mut [f64], p_start: u32) {
    for (i, slot) in out.iter_mut().enumerate() {
        let p = p_start + i as u32;
        *slot = graph.terms_of_pair(p).iter().map(|&t| x[t as usize]).sum();
    }
}

fn update_similarities(
    graph: &BipartiteGraph,
    x: &[f64],
    s: &mut [f64],
    pool: Option<&WorkerPool>,
) {
    match pool {
        Some(pool) if !pool.is_serial() && s.len() >= 2 * MIN_CHUNK => {
            let ranges = er_pool::chunk_ranges(s.len(), pool.threads() * 4, MIN_CHUNK);
            // er-lint: allow(dispatch) -- pool param is pre-gated by the per-run dispatch decision in `iter_impl`
            pool.scope(|scope| {
                let mut rest: &mut [f64] = s;
                for range in ranges {
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    scope.submit(move || similarities_range(graph, x, chunk, range.start as u32));
                }
            });
        }
        _ => similarities_range(graph, x, s, 0),
    }
}

/// Term update + normalization (Eq. 6, line 7) over term range
/// `t_start..t_start + out.len()`. Every slot is written (terms with
/// `P_t = 0` get 0), so the swapped-in buffer needs no clearing.
fn terms_range(
    graph: &BipartiteGraph,
    edge_prob: &[f64],
    s: &[f64],
    normalization: Normalization,
    out: &mut [f64],
    t_start: u32,
) {
    for (i, slot) in out.iter_mut().enumerate() {
        let t = t_start + i as u32;
        let pt = graph.pt(t);
        if pt == 0 {
            *slot = 0.0;
            continue;
        }
        let mut acc = 0.0;
        for &p in graph.pairs_of_term(t) {
            acc += edge_prob[p as usize] * s[p as usize];
        }
        let raw = acc / pt as f64;
        *slot = match normalization {
            // 1/(1 + 1/x) = x/(1+x); continuous at 0.
            Normalization::Reciprocal => raw / (1.0 + raw),
            Normalization::L2 => raw, // normalized by the caller
        };
    }
}

fn update_terms(
    graph: &BipartiteGraph,
    edge_prob: &[f64],
    s: &[f64],
    normalization: Normalization,
    new_x: &mut [f64],
    pool: Option<&WorkerPool>,
) {
    match pool {
        Some(pool) if !pool.is_serial() && new_x.len() >= 2 * MIN_CHUNK => {
            let ranges = er_pool::chunk_ranges(new_x.len(), pool.threads() * 4, MIN_CHUNK);
            // er-lint: allow(dispatch) -- pool param is pre-gated by the per-run dispatch decision in `iter_impl`
            pool.scope(|scope| {
                let mut rest: &mut [f64] = new_x;
                for range in ranges {
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    scope.submit(move || {
                        terms_range(
                            graph,
                            edge_prob,
                            s,
                            normalization,
                            chunk,
                            range.start as u32,
                        );
                    });
                }
            });
        }
        _ => terms_range(graph, edge_prob, s, normalization, new_x, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::BipartiteGraphBuilder;

    /// Term 0 ("model code"): appears only in the matching pair (0, 1).
    /// Term 1 ("common word"): appears in records 0..4, so in 6 pairs
    /// among {0,1,2,3}, most of which do not match.
    fn discriminative_vs_common() -> BipartiteGraph {
        BipartiteGraphBuilder::new(4, 2)
            .postings(0, &[0, 1])
            .postings(1, &[0, 1, 2, 3])
            .build()
    }

    fn uniform_prob(graph: &BipartiteGraph) -> Vec<f64> {
        vec![1.0; graph.pair_count()]
    }

    #[test]
    fn discriminative_term_outranks_common_term() {
        let g = discriminative_vs_common();
        let out = run_iter(&g, &uniform_prob(&g), &IterConfig::default());
        assert!(out.converged, "should converge: deltas {:?}", out.deltas);
        assert!(
            out.term_weights[0] > out.term_weights[1],
            "model code {} must outweigh common word {}",
            out.term_weights[0],
            out.term_weights[1]
        );
    }

    #[test]
    fn pair_sharing_more_terms_scores_higher() {
        // Pair (0,1) shares both terms; (2,3) shares only the common term.
        let g = discriminative_vs_common();
        let out = run_iter(&g, &uniform_prob(&g), &IterConfig::default());
        let p01 = g.pair_id(0, 1).unwrap() as usize;
        let p23 = g.pair_id(2, 3).unwrap() as usize;
        assert!(out.pair_similarities[p01] > out.pair_similarities[p23]);
    }

    #[test]
    fn weights_in_unit_interval() {
        let g = discriminative_vs_common();
        let out = run_iter(&g, &uniform_prob(&g), &IterConfig::default());
        for (t, &w) in out.term_weights.iter().enumerate() {
            assert!((0.0..1.0).contains(&w), "term {t}: {w}");
        }
    }

    #[test]
    fn converges_independently_of_seed() {
        let g = discriminative_vs_common();
        let mut results = Vec::new();
        for seed in [1, 42, 123456] {
            let cfg = IterConfig {
                seed,
                ..Default::default()
            };
            let out = run_iter(&g, &uniform_prob(&g), &cfg);
            assert!(out.converged);
            results.push(out.term_weights);
        }
        // Algorithm 1's fixed point is the principal eigenvector direction
        // (Theorem 1) — independent of the random start.
        for w in &results[1..] {
            for (a, b) in results[0].iter().zip(w) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn low_probability_edges_suppress_term_weight() {
        let g = discriminative_vs_common();
        // Tell ITER that the pairs sharing the common term do not match
        // (p = 0), except the true pair (0, 1).
        let mut prob = vec![0.0; g.pair_count()];
        prob[g.pair_id(0, 1).unwrap() as usize] = 1.0;
        let out = run_iter(&g, &prob, &IterConfig::default());
        let uniform = run_iter(&g, &uniform_prob(&g), &IterConfig::default());
        // Common term is further demoted relative to the discriminative one.
        let ratio_fed = out.term_weights[1] / out.term_weights[0];
        let ratio_uniform = uniform.term_weights[1] / uniform.term_weights[0];
        assert!(
            ratio_fed < ratio_uniform,
            "feedback must demote the common term: {ratio_fed} vs {ratio_uniform}"
        );
    }

    #[test]
    fn zero_probability_isolates_pairs() {
        let g = discriminative_vs_common();
        let out = run_iter(&g, &vec![0.0; g.pair_count()], &IterConfig::default());
        // No mass ever flows back to terms: all weights collapse to 0.
        assert!(out.term_weights.iter().all(|&w| w == 0.0));
    }

    #[test]
    fn deltas_trace_matches_iterations() {
        let g = discriminative_vs_common();
        let out = run_iter(&g, &uniform_prob(&g), &IterConfig::default());
        assert_eq!(out.deltas.len(), out.iterations);
        // Monotone-ish decay: final delta below the first.
        assert!(out.deltas.last().unwrap() < out.deltas.first().unwrap());
    }

    #[test]
    fn l2_normalization_also_converges() {
        let g = discriminative_vs_common();
        let cfg = IterConfig {
            normalization: Normalization::L2,
            ..Default::default()
        };
        let out = run_iter(&g, &uniform_prob(&g), &cfg);
        assert!(out.converged);
        let norm: f64 = out.term_weights.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        assert!(out.term_weights[0] > out.term_weights[1]);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraphBuilder::new(0, 0).build();
        let out = run_iter(&g, &[], &IterConfig::default());
        assert!(out.term_weights.is_empty());
        assert!(out.pair_similarities.is_empty());
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // Large enough that the parallel path actually chunks the term
        // update (> 2 × MIN_CHUNK terms).
        let n_terms = 2 * MIN_CHUNK + 77;
        let n_records = 40u32;
        let mut state = 0x5eed_u64;
        let posting_store: Vec<[u32; 2]> = (0..n_terms)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = ((state >> 33) % n_records as u64) as u32;
                let b = (a + 1 + ((state >> 13) % (n_records as u64 - 1)) as u32) % n_records;
                [a.min(b), a.max(b)]
            })
            .collect();
        let mut builder = BipartiteGraphBuilder::new(n_records as usize, n_terms);
        for (t, post) in posting_store.iter().enumerate() {
            builder = builder.postings(t as u32, post);
        }
        let g = builder.build();
        let prob = uniform_prob(&g);
        let serial = run_iter(
            &g,
            &prob,
            &IterConfig {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [2, 4] {
            let parallel = run_iter(
                &g,
                &prob,
                &IterConfig {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                serial.term_weights, parallel.term_weights,
                "threads={threads}"
            );
            assert_eq!(serial.pair_similarities, parallel.pair_similarities);
            assert_eq!(serial.iterations, parallel.iterations);
            assert_eq!(serial.deltas, parallel.deltas);
        }
        let pool = er_pool::WorkerPool::new(3);
        let pooled = run_iter_pooled(&g, &prob, &IterConfig::default(), &pool);
        assert_eq!(serial.term_weights, pooled.term_weights);
    }

    #[test]
    #[should_panic(expected = "one probability per pair")]
    fn misaligned_probabilities_rejected() {
        let g = discriminative_vs_common();
        run_iter(&g, &[1.0], &IterConfig::default());
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn out_of_range_probability_rejected() {
        let g = discriminative_vs_common();
        run_iter(&g, &vec![1.5; g.pair_count()], &IterConfig::default());
    }
}
