//! Component-level CliqueRank cache for incremental resolution.
//!
//! CliqueRank is component-local: a component's probabilities depend only
//! on its own weighted edges. The cache keys each component by a content
//! hash of `(members, edges, similarities)` and replays the stored edge
//! probabilities on a hit — so re-resolving a corpus where most of the
//! record graph is unchanged (the common case when appending records)
//! skips the matrix work everywhere except the components actually
//! touched. Any change to a member, an edge, or a similarity (beyond the
//! 1e-4 quantum that absorbs ITER's convergence jitter) changes the key.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use er_graph::RecordGraph;

use crate::cliquerank::{solve_component_public, CliqueScratch};
use crate::config::CliqueRankConfig;

/// Cache of solved components, keyed by content hash.
#[derive(Debug, Default)]
pub struct CliqueRankCache {
    /// hash → per-edge probabilities in the component's local edge order
    /// (pairs sorted ascending within the component).
    map: HashMap<u64, Vec<f64>>,
    hits: usize,
    misses: usize,
    /// Solver scratch reused across cache misses — an incremental resolve
    /// that recomputes a handful of components allocates matrix buffers
    /// only until the arena reaches its high-water mark.
    scratch: CliqueScratch,
}

impl CliqueRankCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Components served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Components computed and inserted so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Stored component count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all entries (keeps the hit/miss counters).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// Content hash of one component: members, local edges, similarities and
/// the solver configuration knobs that affect the result.
fn component_hash(graph: &RecordGraph, members: &[u32], config: &CliqueRankConfig) -> u64 {
    let mut h = DefaultHasher::new();
    config.alpha.to_bits().hash(&mut h);
    config.steps.hash(&mut h);
    config.neighbor_mask.hash(&mut h);
    config.clamp.hash(&mut h);
    std::mem::discriminant(&config.recurrence).hash(&mut h);
    match config.boost {
        crate::config::BoostMode::Off => 0u64.hash(&mut h),
        crate::config::BoostMode::Fixed(b) => {
            1u64.hash(&mut h);
            b.to_bits().hash(&mut h);
        }
        crate::config::BoostMode::Expected { quadrature_points } => {
            2u64.hash(&mut h);
            quadrature_points.hash(&mut h);
        }
    }
    members.hash(&mut h);
    for &g in members {
        let (neighbors, sims) = graph.neighbors(g);
        neighbors.hash(&mut h);
        for &s in sims {
            // Quantize: warm-started ITER re-converges to the same fixed
            // point only within its tolerance, so bit-exact hashing would
            // needlessly invalidate every component on every resolve.
            // 1e-4 relative drift is far below anything CliqueRank's
            // row-normalized transitions can distinguish.
            ((s * 1e4).round() as i64).hash(&mut h);
        }
    }
    h.finish()
}

/// [`crate::run_cliquerank`] with component-level caching.
///
/// Returns the matching probability per edge, aligned with
/// [`RecordGraph::pairs`], identical to the uncached run (cached entries
/// were produced by the same solver on an identical component).
pub fn run_cliquerank_cached(
    graph: &RecordGraph,
    config: &CliqueRankConfig,
    cache: &mut CliqueRankCache,
) -> Vec<f64> {
    let comps = graph.components();
    let mut out = vec![0.0f64; graph.pairs().len()];
    let mut local_of = vec![u32::MAX; graph.node_count()];
    for members in &comps.members {
        if members.len() < 2 {
            continue;
        }
        // Component-local edge index list (ascending pair order).
        let mut edge_indices = Vec::new();
        for &g in members {
            for &nb in graph.neighbors(g).0 {
                if nb > g {
                    let pair = er_graph::bipartite::PairNode::new(g, nb);
                    let idx = graph
                        .pairs()
                        .binary_search(&pair)
                        .expect("edge must correspond to a retained pair"); // er-lint: allow(panic) -- every graph edge comes from the retained pair universe
                    edge_indices.push(idx);
                }
            }
        }
        edge_indices.sort_unstable();

        let key = component_hash(graph, members, config);
        if let Some(stored) = cache.map.get(&key) {
            cache.hits += 1;
            er_obs::counter_add("cliquerank_cache_hits_total", 1);
            debug_assert_eq!(stored.len(), edge_indices.len());
            for (&idx, &p) in edge_indices.iter().zip(stored) {
                out[idx] = p;
            }
            continue;
        }
        cache.misses += 1;
        er_obs::counter_add("cliquerank_cache_misses_total", 1);
        for (li, &g) in members.iter().enumerate() {
            local_of[g as usize] = li as u32;
        }
        solve_component_public(
            graph,
            members,
            &local_of,
            config,
            None,
            &mut out,
            &mut cache.scratch,
        );
        for &g in members {
            local_of[g as usize] = u32::MAX;
        }
        let values: Vec<f64> = edge_indices.iter().map(|&idx| out[idx]).collect();
        cache.map.insert(key, values);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::bipartite::PairNode;

    fn pairs(ps: &[(u32, u32)]) -> Vec<PairNode> {
        ps.iter().map(|&(a, b)| PairNode::new(a, b)).collect()
    }

    fn graph(scores: &[f64]) -> RecordGraph {
        RecordGraph::from_pair_scores(6, &pairs(&[(0, 1), (0, 2), (1, 2), (3, 4), (4, 5)]), scores)
    }

    fn cfg() -> CliqueRankConfig {
        CliqueRankConfig {
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn cached_equals_uncached() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let plain = crate::run_cliquerank(&g, &cfg());
        let mut cache = CliqueRankCache::new();
        let cached = run_cliquerank_cached(&g, &cfg(), &mut cache);
        assert_eq!(plain, cached);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn second_run_hits_everything() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::new();
        let first = run_cliquerank_cached(&g, &cfg(), &mut cache);
        let second = run_cliquerank_cached(&g, &cfg(), &mut cache);
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn touching_one_component_recomputes_only_it() {
        let g1 = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::new();
        let _ = run_cliquerank_cached(&g1, &cfg(), &mut cache);
        // Change a similarity in the second component only.
        let g2 = graph(&[1.0, 0.9, 0.8, 0.7, 0.65]);
        let out = run_cliquerank_cached(&g2, &cfg(), &mut cache);
        assert_eq!(cache.hits(), 1, "first component unchanged");
        assert_eq!(cache.misses(), 3, "second component recomputed");
        assert_eq!(out, crate::run_cliquerank(&g2, &cfg()));
    }

    #[test]
    fn config_changes_invalidate() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::new();
        let _ = run_cliquerank_cached(&g, &cfg(), &mut cache);
        let other = CliqueRankConfig { steps: 7, ..cfg() };
        let out = run_cliquerank_cached(&g, &other, &mut cache);
        assert_eq!(cache.hits(), 0);
        assert_eq!(out, crate::run_cliquerank(&g, &other));
    }

    #[test]
    fn clear_drops_entries() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::new();
        let _ = run_cliquerank_cached(&g, &cfg(), &mut cache);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }
}
