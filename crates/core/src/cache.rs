//! Component-level CliqueRank cache for incremental resolution.
//!
//! CliqueRank is component-local: a component's probabilities depend only
//! on its own weighted edges. The cache keys each component by a content
//! hash of `(members, edges, similarities)` and replays the stored edge
//! probabilities on a hit — so re-resolving a corpus where most of the
//! record graph is unchanged (the common case when appending records)
//! skips the matrix work everywhere except the components actually
//! touched. Any change to a member, an edge, or a similarity changes the
//! key.
//!
//! Two precision regimes cover the two incremental callers:
//!
//! * [`CachePrecision::Quantized`] (the default) absorbs ITER's
//!   warm-start convergence jitter by hashing similarities at a 1e-4
//!   quantum — right for [`crate::Resolver`]-level warm restarts where
//!   the caller only compares *matches*.
//! * [`CachePrecision::Exact`] hashes the similarity bits themselves, so
//!   a replayed component is **bit-identical** to a recomputation — the
//!   regime `er-serve` runs in, where incremental resolution is pinned
//!   bitwise against a from-scratch batch run.
//!
//! For long-lived engines the cache also tracks a **generation** (bumped
//! once per resolve): every hit or insert stamps the entry, and
//! [`CliqueRankCache::evict_stale`] drops entries that have not been
//! touched for a caller-chosen number of generations — components whose
//! content keeps changing (dirtied by ingest) would otherwise pile up
//! dead keys forever.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use er_graph::RecordGraph;
use er_pool::WorkerPool;

use crate::cliquerank::{solve_component_public, CliqueScratch};
use crate::config::CliqueRankConfig;

/// How similarities enter the component content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePrecision {
    /// Hash similarities at a 1e-4 quantum: warm-started ITER
    /// re-converges only within its tolerance, so bit-exact hashing
    /// would needlessly invalidate every component on every resolve.
    #[default]
    Quantized,
    /// Hash the exact `f64` bits: a hit guarantees the stored
    /// probabilities are bitwise what the solver would produce.
    Exact,
}

/// One cached component: probabilities in local edge order, plus the
/// generation that last touched it (for stale-entry eviction).
#[derive(Debug)]
struct CacheEntry {
    values: Vec<f64>,
    last_used: u64,
}

/// Cache of solved components, keyed by content hash.
#[derive(Debug, Default)]
pub struct CliqueRankCache {
    /// hash → per-edge probabilities in the component's local edge order
    /// (pairs sorted ascending within the component).
    map: HashMap<u64, CacheEntry>,
    hits: usize,
    misses: usize,
    precision: CachePrecision,
    /// Monotone resolve counter; entries are stamped with it on every
    /// hit or insert.
    generation: u64,
    /// Solver scratch reused across cache misses — an incremental resolve
    /// that recomputes a handful of components allocates matrix buffers
    /// only until the arena reaches its high-water mark.
    scratch: CliqueScratch,
}

impl CliqueRankCache {
    /// An empty cache with the default (quantized) precision.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache hashing exact similarity bits — replays are
    /// bit-identical to recomputation.
    pub fn exact() -> Self {
        Self {
            precision: CachePrecision::Exact,
            ..Self::default()
        }
    }

    /// The hashing precision this cache was built with.
    pub fn precision(&self) -> CachePrecision {
        self.precision
    }

    /// Components served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Components computed and inserted so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Stored component count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all entries (keeps the hit/miss counters).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// The current generation (bumped by the owner once per resolve).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances the generation clock. Call once per resolve epoch; the
    /// entries touched afterwards are stamped with the new value.
    pub fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Evicts entries not touched within the last `max_age` generations
    /// (a dirtied component's old content key is never looked up again),
    /// returning how many were dropped. `max_age = 0` keeps only entries
    /// touched in the current generation.
    pub fn evict_stale(&mut self, max_age: u64) -> usize {
        let before = self.map.len();
        let generation = self.generation;
        self.map
            .retain(|_, e| generation.saturating_sub(e.last_used) <= max_age);
        before - self.map.len()
    }
}

/// Content hash of one component: members, local edges, similarities and
/// the solver configuration knobs that affect the result.
fn component_hash(
    graph: &RecordGraph,
    members: &[u32],
    config: &CliqueRankConfig,
    precision: CachePrecision,
) -> u64 {
    let mut h = DefaultHasher::new();
    config.alpha.to_bits().hash(&mut h);
    config.steps.hash(&mut h);
    config.neighbor_mask.hash(&mut h);
    config.clamp.hash(&mut h);
    std::mem::discriminant(&config.recurrence).hash(&mut h);
    match config.boost {
        crate::config::BoostMode::Off => 0u64.hash(&mut h),
        crate::config::BoostMode::Fixed(b) => {
            1u64.hash(&mut h);
            b.to_bits().hash(&mut h);
        }
        crate::config::BoostMode::Expected { quadrature_points } => {
            2u64.hash(&mut h);
            quadrature_points.hash(&mut h);
        }
    }
    members.hash(&mut h);
    for &g in members {
        let (neighbors, sims) = graph.neighbors(g);
        neighbors.hash(&mut h);
        for &s in sims {
            match precision {
                // Quantize: warm-started ITER re-converges to the same
                // fixed point only within its tolerance, so bit-exact
                // hashing would needlessly invalidate every component on
                // every resolve. 1e-4 relative drift is far below
                // anything CliqueRank's row-normalized transitions can
                // distinguish.
                CachePrecision::Quantized => ((s * 1e4).round() as i64).hash(&mut h),
                CachePrecision::Exact => s.to_bits().hash(&mut h),
            }
        }
    }
    h.finish()
}

/// [`crate::run_cliquerank`] with component-level caching.
///
/// Returns the matching probability per edge, aligned with
/// [`RecordGraph::pairs`], identical to the uncached run (cached entries
/// were produced by the same solver on an identical component).
pub fn run_cliquerank_cached(
    graph: &RecordGraph,
    config: &CliqueRankConfig,
    cache: &mut CliqueRankCache,
) -> Vec<f64> {
    run_cliquerank_cached_impl(graph, config, cache, None)
}

/// [`run_cliquerank_cached`] with pooled re-solves: cache misses hand
/// the worker pool down to the component solver (intra-component matrix
/// parallelism) when the pool's cost model says the total miss work
/// warrants it. Replays stay on the caller thread — the steady-state
/// incremental resolve touches only the dirtied components, and those
/// are exactly the misses this dispatch decision covers.
///
/// Output is bit-identical to [`run_cliquerank_cached`] (and, under
/// [`CachePrecision::Exact`], to the uncached [`crate::run_cliquerank`])
/// at any thread count.
pub fn run_cliquerank_cached_pooled(
    graph: &RecordGraph,
    config: &CliqueRankConfig,
    cache: &mut CliqueRankCache,
    pool: &WorkerPool,
) -> Vec<f64> {
    run_cliquerank_cached_impl(graph, config, cache, Some(pool))
}

fn run_cliquerank_cached_impl(
    graph: &RecordGraph,
    config: &CliqueRankConfig,
    cache: &mut CliqueRankCache,
    pool: Option<&WorkerPool>,
) -> Vec<f64> {
    let comps = graph.components();
    let mut out = vec![0.0f64; graph.pairs().len()];
    let mut local_of = vec![u32::MAX; graph.node_count()];
    // Dispatch for the per-component re-solves: the replayed components
    // cost nothing, so the decision rides on the miss work alone —
    // estimated as the dense recurrence bound Σ n³ over components whose
    // key is absent.
    let miss_pool = pool.filter(|p| {
        let miss_work: usize = comps
            .members
            .iter()
            .filter(|m| m.len() >= 2)
            .filter(|m| {
                let key = component_hash(graph, m, config, cache.precision);
                !cache.map.contains_key(&key)
            })
            .map(|m| m.len().pow(3))
            .sum();
        p.dispatch(miss_work).is_parallel()
    });
    let generation = cache.generation;
    for members in &comps.members {
        if members.len() < 2 {
            continue;
        }
        // Component-local edge index list (ascending pair order).
        let mut edge_indices = Vec::new();
        for &g in members {
            for &nb in graph.neighbors(g).0 {
                if nb > g {
                    let pair = er_graph::bipartite::PairNode::new(g, nb);
                    let idx = graph
                        .pairs()
                        .binary_search(&pair)
                        .expect("edge must correspond to a retained pair"); // er-lint: allow(panic) -- every graph edge comes from the retained pair universe
                    edge_indices.push(idx);
                }
            }
        }
        edge_indices.sort_unstable();

        let key = component_hash(graph, members, config, cache.precision);
        if let Some(stored) = cache.map.get_mut(&key) {
            cache.hits += 1;
            stored.last_used = generation;
            er_obs::counter_add("cliquerank_cache_hits_total", 1);
            debug_assert_eq!(stored.values.len(), edge_indices.len());
            for (&idx, &p) in edge_indices.iter().zip(&stored.values) {
                out[idx] = p;
            }
            continue;
        }
        cache.misses += 1;
        er_obs::counter_add("cliquerank_cache_misses_total", 1);
        for (li, &g) in members.iter().enumerate() {
            local_of[g as usize] = li as u32;
        }
        solve_component_public(
            graph,
            members,
            &local_of,
            config,
            miss_pool,
            &mut out,
            &mut cache.scratch,
        );
        for &g in members {
            local_of[g as usize] = u32::MAX;
        }
        let values: Vec<f64> = edge_indices.iter().map(|&idx| out[idx]).collect();
        cache.map.insert(
            key,
            CacheEntry {
                values,
                last_used: generation,
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::bipartite::PairNode;

    fn pairs(ps: &[(u32, u32)]) -> Vec<PairNode> {
        ps.iter().map(|&(a, b)| PairNode::new(a, b)).collect()
    }

    fn graph(scores: &[f64]) -> RecordGraph {
        RecordGraph::from_pair_scores(6, &pairs(&[(0, 1), (0, 2), (1, 2), (3, 4), (4, 5)]), scores)
    }

    fn cfg() -> CliqueRankConfig {
        CliqueRankConfig {
            threads: 1,
            ..Default::default()
        }
    }

    #[test]
    fn cached_equals_uncached() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let plain = crate::run_cliquerank(&g, &cfg());
        let mut cache = CliqueRankCache::new();
        let cached = run_cliquerank_cached(&g, &cfg(), &mut cache);
        assert_eq!(plain, cached);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn second_run_hits_everything() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::new();
        let first = run_cliquerank_cached(&g, &cfg(), &mut cache);
        let second = run_cliquerank_cached(&g, &cfg(), &mut cache);
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn touching_one_component_recomputes_only_it() {
        let g1 = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::new();
        let _ = run_cliquerank_cached(&g1, &cfg(), &mut cache);
        // Change a similarity in the second component only.
        let g2 = graph(&[1.0, 0.9, 0.8, 0.7, 0.65]);
        let out = run_cliquerank_cached(&g2, &cfg(), &mut cache);
        assert_eq!(cache.hits(), 1, "first component unchanged");
        assert_eq!(cache.misses(), 3, "second component recomputed");
        assert_eq!(out, crate::run_cliquerank(&g2, &cfg()));
    }

    #[test]
    fn config_changes_invalidate() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::new();
        let _ = run_cliquerank_cached(&g, &cfg(), &mut cache);
        let other = CliqueRankConfig { steps: 7, ..cfg() };
        let out = run_cliquerank_cached(&g, &other, &mut cache);
        assert_eq!(cache.hits(), 0);
        assert_eq!(out, crate::run_cliquerank(&g, &other));
    }

    #[test]
    fn clear_drops_entries() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::new();
        let _ = run_cliquerank_cached(&g, &cfg(), &mut cache);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn quantized_absorbs_sub_quantum_drift_exact_does_not() {
        let base = [1.0, 0.9, 0.8, 0.7, 0.6];
        // Perturb one similarity far below the 1e-4 quantum.
        let mut drifted = base;
        drifted[4] += 1e-9;
        let (g1, g2) = (graph(&base), graph(&drifted));

        let mut quantized = CliqueRankCache::new();
        let _ = run_cliquerank_cached(&g1, &cfg(), &mut quantized);
        let _ = run_cliquerank_cached(&g2, &cfg(), &mut quantized);
        assert_eq!(quantized.hits(), 2, "sub-quantum drift must replay");

        let mut exact = CliqueRankCache::exact();
        assert_eq!(exact.precision(), CachePrecision::Exact);
        let _ = run_cliquerank_cached(&g1, &cfg(), &mut exact);
        let out = run_cliquerank_cached(&g2, &cfg(), &mut exact);
        assert_eq!(exact.hits(), 1, "only the untouched component replays");
        assert_eq!(exact.misses(), 3);
        // And the exact cache's answer is bitwise the uncached one.
        assert_eq!(out, crate::run_cliquerank(&g2, &cfg()));
    }

    #[test]
    fn pooled_cached_matches_serial_cached() {
        let g = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let pool = WorkerPool::with_policy(4, er_pool::DispatchPolicy::always_parallel());
        let mut serial_cache = CliqueRankCache::exact();
        let mut pooled_cache = CliqueRankCache::exact();
        let serial = run_cliquerank_cached(&g, &cfg(), &mut serial_cache);
        let pooled = run_cliquerank_cached_pooled(&g, &cfg(), &mut pooled_cache, &pool);
        assert_eq!(serial, pooled);
        // Warm replay through the pooled entry point stays identical.
        let replay = run_cliquerank_cached_pooled(&g, &cfg(), &mut pooled_cache, &pool);
        assert_eq!(replay, pooled);
        assert_eq!(pooled_cache.hits(), 2);
    }

    #[test]
    fn generation_stamps_and_evicts_stale_entries() {
        let g1 = graph(&[1.0, 0.9, 0.8, 0.7, 0.6]);
        let mut cache = CliqueRankCache::exact();
        assert_eq!(cache.generation(), 0);
        let _ = run_cliquerank_cached(&g1, &cfg(), &mut cache);
        assert_eq!(cache.len(), 2);

        // Epoch 1: the second component's content changes (dirtied), the
        // first replays. Its old key goes cold.
        cache.bump_generation();
        assert_eq!(cache.generation(), 1);
        let g2 = graph(&[1.0, 0.9, 0.8, 0.7, 0.65]);
        let _ = run_cliquerank_cached(&g2, &cfg(), &mut cache);
        assert_eq!(cache.len(), 3, "old second-component entry lingers");

        // max_age 1 keeps everything (the cold key is one epoch old)…
        assert_eq!(cache.evict_stale(1), 0);
        // …max_age 0 drops exactly the entry no longer being looked up.
        assert_eq!(cache.evict_stale(0), 1);
        assert_eq!(cache.len(), 2);

        // The survivors still replay bit-identically.
        cache.bump_generation();
        let out = run_cliquerank_cached(&g2, &cfg(), &mut cache);
        assert_eq!(out, crate::run_cliquerank(&g2, &cfg()));
        assert_eq!(cache.misses(), 3, "no recomputation after eviction");
    }

    #[test]
    fn eviction_after_repeated_dirtying_bounds_the_cache() {
        // Dirty the same component every epoch; with age-0 eviction the
        // cache never holds more than live-components entries.
        let mut cache = CliqueRankCache::exact();
        for i in 0..10 {
            cache.bump_generation();
            let s = 0.6 + (i as f64) * 0.01;
            let g = graph(&[1.0, 0.9, 0.8, 0.7, s]);
            let _ = run_cliquerank_cached(&g, &cfg(), &mut cache);
            cache.evict_stale(0);
            assert_eq!(cache.len(), 2, "epoch {i}");
        }
        assert_eq!(cache.hits(), 9, "clean component replays every epoch");
    }
}
