//! CliqueRank — matrix-form reachability probabilities (§VI-C).
//!
//! CliqueRank computes what RSS samples: the probability that a rectified
//! random walk starting at `ri` reaches `rj` within `S` steps. All
//! matrices are built from the non-linearly normalized edge powers of
//! Eq. 11 (`a_ij ∝ s(ri, rj)^α`).
//!
//! # Recurrences
//!
//! [`Recurrence::FirstPassage`] (default) is the exact matrix
//! transcription of RSS's walk. In RSS, each step toward target `j`
//! renormalizes the whole row with the boosted target entry (Eq. 12):
//!
//! ```text
//! P(step v→j)     = β·a_vj / (β·a_vj + rowsum_v − a_vj)   =: H[v,j]
//! P(step v→u), u≠j = a_vu  / (β·a_vj + rowsum_v − a_vj)   = Mt[v,u]·C[v,j]
//! ```
//!
//! with `C[v,j] = rowsum_v / (β·a_vj + rowsum_v − a_vj)` the continuation
//! scale. Since the per-step bonus `b ~ U(0,1)` is independent across
//! steps, the expectation of a walk's success factorizes over steps, so
//! averaging `H` and `C` over `b` (midpoint quadrature) gives the exact
//! expected-walk probabilities. The within-`S`-steps first-passage matrix
//! then satisfies
//!
//! ```text
//! G¹ = H,    G^k = H + C ⊙ (Mt × (G^{k−1} ⊙ Mn))
//! ```
//!
//! where the `⊙ Mn` mask (1 exactly on edges) zeroes the continuation
//! through nodes not adjacent to the target — RSS's early stop. Every
//! entry is a genuine probability (≤ 1) and `p(ri, rj) =
//! (G^S[i,j] + G^S[j,i]) / 2` needs no clamping.
//!
//! [`Recurrence::PaperEq15`] is the paper's literal formulation
//! (`M¹ = Mb`, `M^k = Mt × (M^{k−1} ⊙ Mn)`, `p = Σ_k …`), kept for the
//! fidelity ablation: it boosts only the hop entering the target and uses
//! the unboosted `Mt` elsewhere, so rows whose edges are all
//! weak-but-equal over-count and need clamping (see `ablation_recurrence`
//! bench and DESIGN.md §3.3).
//!
//! # Block decomposition
//!
//! Walks never leave the connected component they start in, so all
//! matrices are block-diagonal under a component permutation. The solver
//! materializes dense matrices **per connected component** — exact, and
//! far cheaper than one n × n product on sparse record graphs.

use er_graph::{bipartite::PairNode, RecordGraph};
use er_matrix::{matmul_pooled_into, matmul_threaded_into, Matrix, MatrixArena, PackScratch};
use er_pool::{ScratchSlot, WorkerPool};

use crate::config::{BoostMode, CliqueRankConfig, Kernel, Recurrence};
use crate::sparse_kernel::SparseScratch;

/// Reusable working memory for the CliqueRank component solver.
///
/// One scratch serves a *stream* of components on one thread: the dense
/// recurrence draws all of its matrices from the size-bucketed
/// [`MatrixArena`], the packed matmul reuses [`PackScratch`], and the
/// sparse kernel its CSR/vector buffers — so after the first component
/// of each size bucket, solving allocates nothing (see
/// `tests/zero_alloc.rs` at the workspace root). Parallel component
/// scheduling checks one out per pool job via
/// [`er_pool::ScratchSlot`].
#[derive(Debug, Default)]
pub struct CliqueScratch {
    arena: MatrixArena,
    pack: PackScratch,
    bonus: Vec<f64>,
    row_sums: Vec<f64>,
    sparse: SparseScratch,
}

/// Runs CliqueRank; returns the matching probability per edge, aligned
/// with [`RecordGraph::pairs`].
///
/// `config.threads > 1` spins up a transient worker pool; pipeline
/// callers with a pool of their own should use [`run_cliquerank_pooled`].
pub fn run_cliquerank(graph: &RecordGraph, config: &CliqueRankConfig) -> Vec<f64> {
    if config.threads <= 1 {
        cliquerank_impl(graph, config, None)
    } else {
        let pool = WorkerPool::new(config.threads);
        cliquerank_impl(graph, config, Some(&pool))
    }
}

/// [`run_cliquerank`] on an existing worker pool: component chunks become
/// pool jobs (many components) or the dense products do (few, large
/// components). Results are identical either way — components are
/// independent and the pooled matmul is bit-identical to the serial one.
pub fn run_cliquerank_pooled(
    graph: &RecordGraph,
    config: &CliqueRankConfig,
    pool: &WorkerPool,
) -> Vec<f64> {
    cliquerank_impl(graph, config, Some(pool))
}

fn cliquerank_impl(
    graph: &RecordGraph,
    config: &CliqueRankConfig,
    pool: Option<&WorkerPool>,
) -> Vec<f64> {
    assert!(config.alpha > 0.0, "alpha must be positive");
    assert!(config.steps >= 1, "need at least one step");
    let comps = graph.components();
    let solvable: Vec<&Vec<u32>> = comps.members.iter().filter(|m| m.len() >= 2).collect();
    let mut out = vec![0.0f64; graph.pairs().len()];
    er_obs::counter_add("cliquerank_components_total", solvable.len() as u64);
    er_obs::gauge_set(
        "cliquerank_largest_component",
        solvable.iter().map(|m| m.len()).max().unwrap_or(0) as f64,
    );

    // Estimated solve cost per component in elementary operations: the
    // per-step cost of whichever kernel `solve_component` will pick
    // (dense product with the same 8× vectorization credit the selector
    // uses, or the sparse two-pointer walk), times the step count. This
    // is what the dispatch policy and the scheduler below reason about.
    let est_cost = |members: &[u32]| -> usize {
        let nc = members.len();
        let dense = (nc * nc * nc) / 8;
        let per_step = if config.neighbor_mask && !matches!(config.kernel, Kernel::Dense) {
            let sparse = crate::sparse_kernel::sparse_step_cost(graph, members);
            if matches!(config.kernel, Kernel::Sparse) {
                sparse
            } else {
                sparse.min(dense)
            }
        } else {
            dense
        };
        per_step.saturating_mul(config.steps.max(1))
    };

    // Components are independent, so they parallelize perfectly (the
    // paper leans on a 32-core server for the same phase) — except when
    // a few giant components dominate: those are scheduled largest-first
    // on the caller thread with the pool parallelizing *inside* the
    // recurrence (pooled GEMM row strips / sparse CSR row ranges), so
    // one huge block no longer serializes the phase. The remaining
    // small components fan out as per-worker chunks, and workloads
    // below the dispatch cutover stay on the caller thread entirely.
    let pool_threads = pool.map_or(1, er_pool::WorkerPool::threads);
    let costs: Vec<usize> = solvable.iter().map(|m| est_cost(m)).collect();
    let total_cost = costs.iter().fold(0usize, |s, &c| s.saturating_add(c));
    let pool = match pool {
        Some(p) if p.dispatch(total_cost).is_parallel() => p,
        _ => {
            let mut local_of = vec![u32::MAX; graph.node_count()];
            let mut scratch = CliqueScratch::default();
            for members in solvable {
                for (li, &g) in members.iter().enumerate() {
                    local_of[g as usize] = li as u32;
                }
                solve_component(
                    graph,
                    members,
                    &local_of,
                    config,
                    pool,
                    &mut out,
                    &mut scratch,
                );
                for &g in members {
                    local_of[g as usize] = u32::MAX;
                }
            }
            return out;
        }
    };

    // Descending-cost order; stable sort of index positions keeps equal
    // costs in original order, so the schedule is deterministic.
    let mut order: Vec<u32> = (0..solvable.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(costs[i as usize]));
    // A component is "big" when it exceeds a fair per-worker share of
    // the phase — with component-level chunking it would straddle the
    // phase's critical path — and is itself past the dispatch cutover.
    let serial_below = pool.policy().serial_below;
    let is_big = |i: u32| {
        let c = costs[i as usize];
        c.saturating_mul(pool_threads) > total_cost && c >= serial_below
    };
    let split = order.partition_point(|&i| is_big(i));
    let (big, small) = order.split_at(split);

    // Big components: largest first, caller thread, intra-component
    // parallelism via the pool.
    let mut scratch = CliqueScratch::default();
    if !big.is_empty() {
        er_obs::counter_add("cliquerank_intra_parallel_solves_total", big.len() as u64);
        let mut local_of = vec![u32::MAX; graph.node_count()];
        for &i in big {
            let members = solvable[i as usize];
            let _span = er_obs::span("component_large");
            for (li, &g) in members.iter().enumerate() {
                local_of[g as usize] = li as u32;
            }
            solve_component(
                graph,
                members,
                &local_of,
                config,
                Some(pool),
                &mut out,
                &mut scratch,
            );
            for &g in members {
                local_of[g as usize] = u32::MAX;
            }
        }
    }
    if small.is_empty() {
        return out;
    }

    // Per-job config with matmul threading disabled — parallelism lives
    // at the component level here (nested pooled products would only
    // fight the component jobs for the same workers).
    let workers = pool_threads.clamp(1, small.len());
    let worker_config = CliqueRankConfig {
        threads: 1,
        ..*config
    };
    let chunks: Vec<Vec<&Vec<u32>>> = {
        // Round-robin in descending-cost order for rough load balance.
        let mut chunks: Vec<Vec<&Vec<u32>>> = vec![Vec::new(); workers];
        for (pos, &i) in small.iter().enumerate() {
            chunks[pos % workers].push(solvable[i as usize]);
        }
        chunks
    };
    let mut results: Vec<Vec<(usize, f64)>> = chunks.iter().map(|_| Vec::new()).collect();
    // Per-worker scratch: each chunk job checks one out, so a worker's
    // whole component stream reuses the same grown buffers.
    let scratch_slot: ScratchSlot<CliqueScratch> = ScratchSlot::new();
    pool.scope(|s| {
        for (chunk, result) in chunks.iter().zip(results.iter_mut()) {
            let worker_config = &worker_config;
            let scratch_slot = &scratch_slot;
            s.submit(move || {
                let mut scratch = scratch_slot.checkout();
                let mut local_out = vec![0.0f64; graph.pairs().len()];
                let mut local_of = vec![u32::MAX; graph.node_count()];
                let mut touched = Vec::new();
                for members in chunk {
                    for (li, &g) in members.iter().enumerate() {
                        local_of[g as usize] = li as u32;
                    }
                    solve_component(
                        graph,
                        members,
                        &local_of,
                        worker_config,
                        None,
                        &mut local_out,
                        &mut scratch,
                    );
                    for &g in *members {
                        local_of[g as usize] = u32::MAX;
                        for &nb in graph.neighbors(g).0 {
                            if nb > g {
                                let pair = PairNode::new(g, nb);
                                let idx = graph
                                    .pairs()
                                    .binary_search(&pair)
                                    .expect("edge is a retained pair"); // er-lint: allow(panic) -- every graph edge comes from the retained pair universe
                                touched.push((idx, local_out[idx]));
                            }
                        }
                    }
                }
                *result = touched;
            });
        }
    });
    for worker_results in results {
        for (idx, p) in worker_results {
            out[idx] = p;
        }
    }
    out
}

/// Entry point for the component cache (`crate::cache`): solves one
/// connected component, writing edge probabilities into `out`.
pub(crate) fn solve_component_public(
    graph: &RecordGraph,
    members: &[u32],
    local_of: &[u32],
    config: &CliqueRankConfig,
    pool: Option<&WorkerPool>,
    out: &mut [f64],
    scratch: &mut CliqueScratch,
) {
    solve_component(graph, members, local_of, config, pool, out, scratch);
}

/// Solves one connected component serially on caller-owned scratch,
/// writing the symmetrized edge probabilities into `out` (indexed by
/// [`RecordGraph::pairs`] position). `members` must be one of
/// the graph's connected components and `local_of[g]` its local index
/// for each member `g` (`u32::MAX` elsewhere).
///
/// After one warm-up solve per component-size bucket, repeated calls
/// through the same `scratch` perform **zero allocations** — the
/// contract pinned by `tests/zero_alloc.rs`.
pub fn solve_component_into(
    graph: &RecordGraph,
    members: &[u32],
    local_of: &[u32],
    config: &CliqueRankConfig,
    out: &mut [f64],
    scratch: &mut CliqueScratch,
) {
    solve_component(graph, members, local_of, config, None, out, scratch);
}

/// Serial [`run_cliquerank`] variant on caller-owned scratch: `out` is
/// reshaped to one probability per retained pair. Component discovery
/// still allocates; the per-component recurrences do not.
pub fn run_cliquerank_into(
    graph: &RecordGraph,
    config: &CliqueRankConfig,
    scratch: &mut CliqueScratch,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.resize(graph.pairs().len(), 0.0);
    let comps = graph.components();
    let mut local_of = vec![u32::MAX; graph.node_count()];
    for members in comps.members.iter().filter(|m| m.len() >= 2) {
        for (li, &g) in members.iter().enumerate() {
            local_of[g as usize] = li as u32;
        }
        solve_component(graph, members, &local_of, config, None, out, scratch);
        for &g in members {
            local_of[g as usize] = u32::MAX;
        }
    }
}

/// Dense solve of one connected component, writing edge probabilities
/// into `out`.
#[allow(clippy::needless_range_loop)]
fn solve_component(
    graph: &RecordGraph,
    members: &[u32],
    local_of: &[u32],
    config: &CliqueRankConfig,
    pool: Option<&WorkerPool>,
    out: &mut [f64],
    scratch: &mut CliqueScratch,
) {
    let nc = members.len();
    let CliqueScratch {
        arena,
        pack,
        bonus,
        row_sums,
        sparse,
    } = scratch;
    bonus_samples_into(config, bonus);
    // Kernel selection: the edgewise sparse recursion is exact whenever
    // the neighbor mask is on; pick it when its estimated per-step cost
    // beats the dense product (dense gets an 8x constant-factor credit
    // for its vectorized inner loop).
    let use_sparse = config.neighbor_mask
        && match config.kernel {
            Kernel::Dense => false,
            Kernel::Sparse => true,
            Kernel::Auto => {
                let sparse_cost = crate::sparse_kernel::sparse_step_cost(graph, members);
                sparse_cost.saturating_mul(8) < nc * nc * nc
            }
        };
    if use_sparse {
        er_obs::counter_add("cliquerank_sparse_solves_total", 1);
        crate::sparse_kernel::solve_component_sparse(
            graph, members, local_of, config, bonus, pool, out, sparse,
        );
        return;
    }
    er_obs::counter_add("cliquerank_dense_solves_total", 1);
    // α-scaled edge powers: a[i][j] = (w_ij / (2 · rowmax_i))^α. The row
    // scaling keeps powf in range for any similarity magnitude (it cancels
    // in the row normalization); the factor 2 leaves headroom for the
    // (1 + b) ≤ 2 bonus.
    let mut a = arena.take(nc, nc);
    row_sums.clear();
    row_sums.resize(nc, 0.0);
    for (li, &g) in members.iter().enumerate() {
        let (neighbors, sims) = graph.neighbors(g);
        let row_max = sims.iter().fold(0.0f64, |m, &v| m.max(v));
        debug_assert!(row_max > 0.0, "component member with no positive edge");
        let scale = 2.0 * row_max;
        let mut sum = 0.0;
        for (&nb, &sim) in neighbors.iter().zip(sims) {
            let lj = local_of[nb as usize] as usize;
            let v = (sim / scale).powf(config.alpha);
            a.set(li, lj, v);
            sum += v;
        }
        row_sums[li] = sum;
    }

    // Mt: plain row-normalized transitions (Eq. 11 / 13).
    let mut mt = arena.take(nc, nc);
    for i in 0..nc {
        if row_sums[i] <= 0.0 {
            continue;
        }
        for j in 0..nc {
            let v = a.get(i, j);
            if v > 0.0 {
                mt.set(i, j, v / row_sums[i]);
            }
        }
    }
    er_matrix::invariant::debug_validate("CliqueRank transition matrix Mt", || {
        mt.validate_row_stochastic(1e-9)
    });

    let final_matrix = match config.recurrence {
        Recurrence::FirstPassage => first_passage(
            graph, members, local_of, &a, row_sums, &mt, bonus, config, pool, arena, pack,
        ),
        Recurrence::PaperEq15 => paper_eq15(
            graph, members, local_of, &a, row_sums, &mt, bonus, config, pool, arena, pack,
        ),
    };

    // Symmetrize (Eq. 15's bi-directional average) and write out per
    // edge. Each directional sum approximates "probability of reaching
    // the target within S steps" and is therefore clamped to [0, 1]
    // *before* averaging — otherwise a single over-counted direction
    // (Eq. 15 on a weak blob) could push the average past the threshold
    // on its own, defeating the bi-directional averaging the paper
    // introduces exactly to depress one-sided reachability (§VI-B).
    for (li, &g) in members.iter().enumerate() {
        for &nb in graph.neighbors(g).0 {
            if nb <= g {
                continue;
            }
            let lj = local_of[nb as usize] as usize;
            let (mut fwd, mut bwd) = (final_matrix.get(li, lj), final_matrix.get(lj, li));
            if config.clamp {
                fwd = fwd.clamp(0.0, 1.0);
                bwd = bwd.clamp(0.0, 1.0);
            }
            let p = 0.5 * (fwd + bwd);
            let pair = PairNode::new(g, nb);
            let idx = graph
                .pairs()
                .binary_search(&pair)
                .expect("edge must correspond to a retained pair"); // er-lint: allow(panic) -- every graph edge comes from the retained pair universe
            out[idx] = p;
        }
    }
    arena.recycle(a);
    arena.recycle(mt);
    arena.recycle(final_matrix);
}

/// The `(1 + b)^α` bonus factors the boosted matrices average over,
/// written into a reusable buffer.
pub(crate) fn bonus_samples_into(config: &CliqueRankConfig, out: &mut Vec<f64>) {
    out.clear();
    match config.boost {
        BoostMode::Off => out.push(1.0),
        BoostMode::Fixed(b) => {
            assert!((0.0..=1.0).contains(&b), "bonus b must be in [0, 1]");
            out.push((1.0 + b).powf(config.alpha));
        }
        BoostMode::Expected { quadrature_points } => {
            assert!(quadrature_points >= 1, "need at least one quadrature point");
            for m in 0..quadrature_points {
                let b = (m as f64 + 0.5) / quadrature_points as f64;
                out.push((1.0 + b).powf(config.alpha));
            }
        }
    }
}

/// First-passage recurrence: returns `G^S` (an arena matrix the caller
/// recycles).
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)]
fn first_passage(
    graph: &RecordGraph,
    members: &[u32],
    local_of: &[u32],
    a: &Matrix,
    row_sums: &[f64],
    mt: &Matrix,
    bonus: &[f64],
    config: &CliqueRankConfig,
    pool: Option<&WorkerPool>,
    arena: &mut MatrixArena,
    pack: &mut PackScratch,
) -> Matrix {
    let nc = members.len();
    // H[v,j]: expected boosted hit probability; C[v,j]: expected
    // continuation scale. Both only meaningful where (v, j) is an edge for
    // H, but C is needed for every (v, j) with j adjacent to the walk —
    // when (v, j) is NOT an edge, the boost does not apply and
    // C[v,j] = 1 (the row is normalized without any boosted entry).
    let mut h = arena.take(nc, nc);
    let mut c = arena.take(nc, nc);
    c.data_mut().fill(1.0);
    for i in 0..nc {
        if row_sums[i] <= 0.0 {
            continue;
        }
        for j in 0..nc {
            let aij = a.get(i, j);
            if aij <= 0.0 {
                continue;
            }
            let rest = (row_sums[i] - aij).max(0.0);
            let mut hit = 0.0;
            let mut cont = 0.0;
            for &beta in bonus {
                let denom = beta * aij + rest;
                hit += beta * aij / denom;
                cont += row_sums[i] / denom;
            }
            h.set(i, j, hit / bonus.len() as f64);
            c.set(i, j, cont / bonus.len() as f64);
        }
    }

    // G¹ = H; G^k = H + C ⊙ (Mt × (G^{k−1} ⊙ Mn)). `cont` double-buffers
    // against `g_mat`: the step product reshapes it in place, so the loop
    // body allocates nothing.
    let mut g_mat = arena.take(nc, nc);
    g_mat.data_mut().copy_from_slice(h.data());
    let mut masked = arena.take(nc, nc);
    let mut cont = arena.take(nc, nc);
    for _ in 2..=config.steps {
        apply_neighbor_mask(graph, members, local_of, &g_mat, &mut masked, config);
        step_product_into(mt, &masked, &mut cont, config, pool, pack);
        cont.hadamard_assign(&c);
        cont.add_assign(&h);
        std::mem::swap(&mut g_mat, &mut cont);
    }
    arena.recycle(h);
    arena.recycle(c);
    arena.recycle(masked);
    arena.recycle(cont);
    g_mat
}

/// One `Mt × masked` step into `out`, on the shared pool when available.
/// All matmul variants are bit-identical, so the choice only affects
/// speed.
fn step_product_into(
    mt: &Matrix,
    masked: &Matrix,
    out: &mut Matrix,
    config: &CliqueRankConfig,
    pool: Option<&WorkerPool>,
    pack: &mut PackScratch,
) {
    match pool {
        Some(pool) => matmul_pooled_into(mt, masked, out, pool, pack),
        None => matmul_threaded_into(mt, masked, out, config.threads, pack),
    }
}

/// The paper's literal Eq. 15 accumulation: returns `Σ_k M^k` (an arena
/// matrix the caller recycles).
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)]
fn paper_eq15(
    graph: &RecordGraph,
    members: &[u32],
    local_of: &[u32],
    a: &Matrix,
    row_sums: &[f64],
    mt: &Matrix,
    bonus: &[f64],
    config: &CliqueRankConfig,
    pool: Option<&WorkerPool>,
    arena: &mut MatrixArena,
    pack: &mut PackScratch,
) -> Matrix {
    let nc = members.len();
    // Mb[i,j] = mean_b[ β·a_ij / (β·a_ij + rowsum_i − a_ij) ]. `mb`
    // doubles as the accumulator (M¹ = Mb and acc starts at M¹).
    let mut acc = arena.take(nc, nc);
    for i in 0..nc {
        for j in 0..nc {
            let aij = a.get(i, j);
            if aij <= 0.0 {
                continue;
            }
            let rest = (row_sums[i] - aij).max(0.0);
            let mean = bonus
                .iter()
                .map(|&beta| beta * aij / (beta * aij + rest))
                .sum::<f64>()
                / bonus.len() as f64;
            acc.set(i, j, mean);
        }
    }
    let mut m = arena.take(nc, nc);
    m.data_mut().copy_from_slice(acc.data());
    let mut masked = arena.take(nc, nc);
    let mut next = arena.take(nc, nc);
    for _ in 2..=config.steps {
        apply_neighbor_mask(graph, members, local_of, &m, &mut masked, config);
        step_product_into(mt, &masked, &mut next, config, pool, pack);
        std::mem::swap(&mut m, &mut next);
        acc.add_assign(&m);
    }
    arena.recycle(m);
    arena.recycle(masked);
    arena.recycle(next);
    acc
}

/// Writes `source ⊙ Mn` into `masked` (sparse copy over edges); with the
/// mask disabled, copies `source` wholesale. In-place either way — the
/// recurrences swap `masked` against their iterate rather than clone.
fn apply_neighbor_mask(
    graph: &RecordGraph,
    members: &[u32],
    local_of: &[u32],
    source: &Matrix,
    masked: &mut Matrix,
    config: &CliqueRankConfig,
) {
    if !config.neighbor_mask {
        masked.reset(source.rows(), source.cols());
        masked.data_mut().copy_from_slice(source.data());
        return;
    }
    masked.data_mut().fill(0.0);
    for (li, &g) in members.iter().enumerate() {
        for &nb in graph.neighbors(g).0 {
            let lj = local_of[nb as usize] as usize;
            masked.set(li, lj, source.get(li, lj));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CliqueRankConfig;

    fn pairs(ps: &[(u32, u32)]) -> Vec<PairNode> {
        ps.iter().map(|&(a, b)| PairNode::new(a, b)).collect()
    }

    /// Two tight cliques {0,1,2} and {3,4} joined by a weak bridge 2–3.
    fn two_cliques() -> RecordGraph {
        let p = pairs(&[(0, 1), (0, 2), (1, 2), (3, 4), (2, 3)]);
        let s = [1.0, 1.0, 1.0, 1.0, 0.05];
        RecordGraph::from_pair_scores(5, &p, &s)
    }

    fn edge_prob(g: &RecordGraph, probs: &[f64], a: u32, b: u32) -> f64 {
        let idx = g
            .pairs()
            .iter()
            .position(|p| *p == PairNode::new(a, b))
            .expect("edge present");
        probs[idx]
    }

    fn cfg() -> CliqueRankConfig {
        CliqueRankConfig {
            threads: 1,
            ..Default::default()
        }
    }

    fn fp_cfg() -> CliqueRankConfig {
        CliqueRankConfig {
            recurrence: Recurrence::FirstPassage,
            ..cfg()
        }
    }

    #[test]
    fn clique_edges_near_one_bridge_near_zero() {
        let g = two_cliques();
        let p = run_cliquerank(&g, &cfg());
        assert!(edge_prob(&g, &p, 0, 1) > 0.9, "{p:?}");
        assert!(edge_prob(&g, &p, 3, 4) > 0.9, "{p:?}");
        assert!(edge_prob(&g, &p, 2, 3) < 0.2, "{p:?}");
    }

    #[test]
    fn first_passage_within_unit_interval_without_clamping() {
        let g = two_cliques();
        let p = run_cliquerank(
            &g,
            &CliqueRankConfig {
                clamp: false,
                ..fp_cfg()
            },
        );
        for &v in &p {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "{v}");
        }
    }

    #[test]
    fn agrees_with_rss_statistically() {
        // First-passage CliqueRank is the exact expectation of RSS — on a
        // small graph with many walks the two must agree within noise.
        let g = two_cliques();
        let cr = run_cliquerank(&g, &fp_cfg());
        let rss = crate::rss::run_rss(
            &g,
            &crate::config::RssConfig {
                walks_per_edge: 4000,
                ..Default::default()
            },
        );
        for (i, pair) in g.pairs().iter().enumerate() {
            assert!(
                (cr[i] - rss.probabilities[i]).abs() < 0.06,
                "pair {:?}: cliquerank {} vs rss {}",
                pair,
                cr[i],
                rss.probabilities[i]
            );
        }
    }

    #[test]
    fn noise_record_with_equal_weak_edges_stays_below_threshold() {
        // Node 3 attaches to a 3-clique by three equal weak edges (a
        // record whose only shared term is a common word). The paper's
        // Eq. 15 recursion over-counts here; first passage must keep the
        // symmetrized probability near 0.5 (one direction succeeds via the
        // boost, the other nearly never walks to the noise record).
        let p = pairs(&[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]);
        let s = [1.0, 1.0, 1.0, 0.1, 0.1, 0.1];
        let g = RecordGraph::from_pair_scores(4, &p, &s);
        let probs = run_cliquerank(&g, &fp_cfg());
        for &(a, b) in &[(0u32, 3u32), (1, 3), (2, 3)] {
            let v = edge_prob(&g, &probs, a, b);
            assert!(
                v < 0.75,
                "noise edge ({a},{b}) must stay below threshold: {v}"
            );
        }
        // While the paper's literal recurrence, clamped, saturates them.
        let paper = run_cliquerank(
            &g,
            &CliqueRankConfig {
                recurrence: Recurrence::PaperEq15,
                ..cfg()
            },
        );
        let fp_mean = probs.iter().sum::<f64>() / probs.len() as f64;
        let paper_mean = paper.iter().sum::<f64>() / paper.len() as f64;
        assert!(paper_mean >= fp_mean - 1e-9);
    }

    #[test]
    fn big_clique_needs_boost() {
        // 30-clique with uniform weights and S = 8: the plain walk has
        // ~1/29 chance per step of hitting one specific member.
        let n = 30u32;
        let mut ps = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                ps.push((i, j));
            }
        }
        let pr = pairs(&ps);
        let g = RecordGraph::from_pair_scores(n as usize, &pr, &vec![1.0; pr.len()]);
        let short = CliqueRankConfig { steps: 8, ..cfg() };
        let with = run_cliquerank(&g, &short);
        let without = run_cliquerank(
            &g,
            &CliqueRankConfig {
                boost: BoostMode::Off,
                ..short
            },
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&with) > mean(&without) + 0.3,
            "boost {} vs no boost {}",
            mean(&with),
            mean(&without)
        );
    }

    #[test]
    fn components_are_independent() {
        // Solving two components together or as separate graphs must agree.
        let p_all = pairs(&[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let s_all = [0.9, 0.8, 0.7, 0.6];
        let g_all = RecordGraph::from_pair_scores(5, &p_all, &s_all);
        let got_all = run_cliquerank(&g_all, &cfg());

        let p_a = pairs(&[(0, 1), (0, 2), (1, 2)]);
        let g_a = RecordGraph::from_pair_scores(3, &p_a, &[0.9, 0.8, 0.7]);
        let got_a = run_cliquerank(&g_a, &cfg());
        for (i, pair) in g_a.pairs().iter().enumerate() {
            let full = edge_prob(&g_all, &got_all, pair.a, pair.b);
            assert!((full - got_a[i]).abs() < 1e-12);
        }

        let p_b = pairs(&[(0, 1)]);
        let g_b = RecordGraph::from_pair_scores(2, &p_b, &[0.6]);
        let got_b = run_cliquerank(&g_b, &cfg());
        let full = edge_prob(&g_all, &got_all, 3, 4);
        assert!((full - got_b[0]).abs() < 1e-12);
    }

    #[test]
    fn paper_recurrence_unclamped_can_exceed_one() {
        let p = pairs(&[(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (2, 3)]);
        let s = [1.0, 1.0, 1.0, 0.1, 0.1, 0.1];
        let g = RecordGraph::from_pair_scores(4, &p, &s);
        let probs = run_cliquerank(
            &g,
            &CliqueRankConfig {
                recurrence: Recurrence::PaperEq15,
                clamp: false,
                ..cfg()
            },
        );
        assert!(probs.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(
            probs.iter().any(|&v| v > 1.0),
            "Eq. 15 over-counting should be visible unclamped: {probs:?}"
        );
    }

    #[test]
    fn deterministic() {
        let g = two_cliques();
        assert_eq!(run_cliquerank(&g, &cfg()), run_cliquerank(&g, &cfg()));
    }

    #[test]
    fn isolated_nodes_and_empty_graph() {
        let g = RecordGraph::from_pair_scores(3, &[], &[]);
        assert!(run_cliquerank(&g, &cfg()).is_empty());
    }

    #[test]
    fn threaded_matches_single_threaded() {
        let g = two_cliques();
        let single = run_cliquerank(&g, &cfg());
        let multi = run_cliquerank(
            &g,
            &CliqueRankConfig {
                threads: 4,
                ..cfg()
            },
        );
        for (a, b) in single.iter().zip(&multi) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_components_match_serial_on_large_graphs() {
        // 60 cliques of 12 = 720 members: crosses the parallel threshold.
        let mut ps = Vec::new();
        let mut scores = Vec::new();
        for c in 0..60u32 {
            let base = c * 12;
            for i in 0..12u32 {
                for j in i + 1..12u32 {
                    ps.push(PairNode::new(base + i, base + j));
                    scores.push(1.0 + (i + j) as f64 * 0.01);
                }
            }
        }
        let g = RecordGraph::from_pair_scores(720, &ps, &scores);
        let serial = run_cliquerank(&g, &cfg());
        let parallel = run_cliquerank(
            &g,
            &CliqueRankConfig {
                threads: 3,
                ..cfg()
            },
        );
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pooled_matches_serial_exactly() {
        // Components path (many small cliques) and matmul path (one big
        // component) must both be bit-identical to the serial solve.
        let mut ps = Vec::new();
        let mut scores = Vec::new();
        for c in 0..60u32 {
            let base = c * 12;
            for i in 0..12u32 {
                for j in i + 1..12u32 {
                    ps.push(PairNode::new(base + i, base + j));
                    scores.push(1.0 + (i + j) as f64 * 0.01);
                }
            }
        }
        let many = RecordGraph::from_pair_scores(720, &ps, &scores);
        let mut big_ps = Vec::new();
        for i in 0..80u32 {
            for j in i + 1..80u32 {
                big_ps.push(PairNode::new(i, j));
            }
        }
        let big_scores: Vec<f64> = (0..big_ps.len())
            .map(|i| 1.0 + (i % 7) as f64 * 0.02)
            .collect();
        let big = RecordGraph::from_pair_scores(80, &big_ps, &big_scores);
        let pool = er_pool::WorkerPool::new(3);
        for g in [&many, &big] {
            let serial = run_cliquerank(g, &cfg());
            let pooled = run_cliquerank_pooled(g, &cfg(), &pool);
            assert_eq!(serial, pooled);
        }
    }

    #[test]
    fn fixed_boost_modes_work() {
        let g = two_cliques();
        for boost in [BoostMode::Fixed(0.0), BoostMode::Fixed(0.5), BoostMode::Off] {
            let p = run_cliquerank(&g, &CliqueRankConfig { boost, ..cfg() });
            assert!(
                p.iter().all(|v| (0.0..=1.0).contains(v)),
                "{boost:?}: {p:?}"
            );
        }
    }

    #[test]
    fn single_step_is_hit_matrix() {
        let g = two_cliques();
        let one = CliqueRankConfig {
            steps: 1,
            clamp: false,
            ..cfg()
        };
        let p = run_cliquerank(&g, &one);
        for &v in &p {
            assert!(v > 0.0 && v <= 1.0);
        }
    }
}
