//! Edgewise sparse kernel for CliqueRank components.
//!
//! With the neighbor mask on, every matrix in the CliqueRank recurrence
//! is **edge-supported**: `M¹` is built from edges, and each step ends in
//! `⊙ Mn`, which zeroes everything off the adjacency. The product then
//! only ever needs edge positions:
//!
//! ```text
//! (Mt × masked)[i,j] = Σ_v Mt[i,v] · masked[v,j]
//!                    = Σ_{v ∈ N(i) ∩ N(j)} Mt[i,v] · M[v,j]
//! ```
//!
//! so one step costs `O(Σ_{(i,j)∈E} (deg i + deg j))` (two-pointer
//! intersection of sorted neighbor rows) instead of `O(n³)`. This is an
//! exact re-expression of the dense recurrence — the `kernels_agree`
//! tests pin the two against each other — and it is what makes the very
//! sparse Restaurant-style record graphs essentially free.
//!
//! All working vectors live in a caller-owned `SparseScratch` and are
//! rebuilt with `clear()` + `push`/`resize` inside their existing
//! capacity, so a stream of components solved through one scratch runs
//! with zero steady-state allocations.

use er_graph::{bipartite::PairNode, RecordGraph};
use er_pool::WorkerPool;

use crate::config::{CliqueRankConfig, Recurrence};

/// Reusable buffers for the edgewise kernel: the local directed-edge CSR
/// plus the per-edge recurrence vectors. All sized by the component's
/// directed edge count and reused across components.
#[derive(Debug, Default)]
pub(crate) struct SparseScratch {
    /// Row offsets per local node (`nc + 1` entries).
    row_start: Vec<usize>,
    /// Target local id per directed edge, sorted within each row.
    tgt: Vec<u32>,
    /// Index of the opposite directed edge `(j→i)` for each `(i→j)`.
    rev: Vec<u32>,
    /// Row-normalized transition `Mt[i,j]` per directed edge.
    mt: Vec<f64>,
    /// α-scaled unnormalized weight per directed edge.
    a: Vec<f64>,
    /// Row sums of `a`.
    row_sum: Vec<f64>,
    /// Expected boosted hit probability per directed edge.
    hit: Vec<f64>,
    /// Expected continuation scale per directed edge.
    cont: Vec<f64>,
    /// Recurrence double buffers and the Eq. 15 accumulator.
    cur: Vec<f64>,
    next: Vec<f64>,
    acc: Vec<f64>,
}

impl SparseScratch {
    /// Rebuilds the local directed-edge CSR for one component inside the
    /// existing buffers.
    fn build_edges(&mut self, graph: &RecordGraph, members: &[u32], local_of: &[u32], alpha: f64) {
        let nc = members.len();
        self.row_start.clear();
        self.row_start.push(0);
        self.tgt.clear();
        self.a.clear();
        self.row_sum.clear();
        self.row_sum.resize(nc, 0.0);
        for (li, &g) in members.iter().enumerate() {
            let (neighbors, sims) = graph.neighbors(g);
            let row_max = sims.iter().fold(0.0f64, |m, &v| m.max(v));
            let scale = 2.0 * row_max;
            let mut sum = 0.0;
            for (&nb, &sim) in neighbors.iter().zip(sims) {
                // `members` is sorted ascending and local ids follow that
                // order, so global neighbor order == local target order.
                let lj = local_of[nb as usize];
                debug_assert!(lj != u32::MAX);
                let v = (sim / scale).powf(alpha);
                self.tgt.push(lj);
                self.a.push(v);
                sum += v;
            }
            self.row_sum[li] = sum;
            self.row_start.push(self.tgt.len());
        }
        self.mt.clear();
        for i in 0..nc {
            let (s, e) = (self.row_start[i], self.row_start[i + 1]);
            let denom = self.row_sum[i];
            for &v in &self.a[s..e] {
                self.mt.push(if denom > 0.0 { v / denom } else { 0.0 });
            }
        }
        // Reverse-edge indices via binary search in the opposite row.
        self.rev.clear();
        self.rev.resize(self.tgt.len(), 0);
        for i in 0..nc {
            for e in self.row_start[i]..self.row_start[i + 1] {
                let j = self.tgt[e] as usize;
                let (js, je) = (self.row_start[j], self.row_start[j + 1]);
                let pos = self.tgt[js..je]
                    .binary_search(&(i as u32))
                    .expect("undirected graph: reverse edge must exist"); // er-lint: allow(panic) -- CSR rows mirror every undirected edge in both directions
                self.rev[e] = (js + pos) as u32;
            }
        }
    }
}

/// `Σ_{v ∈ N(i) ∩ N(j)} Mt[i,v] · cur[(v→j)]` for the directed edge at
/// index `e = (i→j)`, by two-pointer merge of rows `i` and `j`.
// er-lint: zero-alloc
fn propagate(
    row_start: &[usize],
    tgt: &[u32],
    rev: &[u32],
    mt: &[f64],
    cur: &[f64],
    i: usize,
    e: usize,
) -> f64 {
    let j = tgt[e] as usize;
    let (mut pi, ei) = (row_start[i], row_start[i + 1]);
    let (mut pj, ej) = (row_start[j], row_start[j + 1]);
    let mut sum = 0.0;
    while pi < ei && pj < ej {
        match tgt[pi].cmp(&tgt[pj]) {
            std::cmp::Ordering::Less => pi += 1,
            std::cmp::Ordering::Greater => pj += 1,
            std::cmp::Ordering::Equal => {
                // Common neighbor v: row j's entry at pj is (j→v);
                // its reverse is (v→j), whose current value we need.
                let v_to_j = rev[pj] as usize;
                sum += mt[pi] * cur[v_to_j];
                pi += 1;
                pj += 1;
            }
        }
    }
    sum
}

/// Estimated per-step cost of the sparse kernel for a component:
/// `Σ_{(i,j) directed} (deg i + deg j)` two-pointer steps. Allocation-free
/// (it runs on every component, before kernel selection).
// er-lint: zero-alloc
pub(crate) fn sparse_step_cost(graph: &RecordGraph, members: &[u32]) -> usize {
    // Σ over directed edges (i,·) of (deg_i + deg_j) = 2 Σ_i deg_i².
    let sum_sq: usize = members
        .iter()
        .map(|&g| {
            let d = graph.neighbors(g).0.len();
            d * d
        })
        .sum();
    2 * sum_sq
}

/// Splits the local node rows into contiguous ranges of roughly equal
/// directed-edge count — the unit of work for the parallel recurrence
/// step. Depends only on the CSR shape and `parts`, never on timing.
fn edge_balanced_row_ranges(row_start: &[usize], parts: usize) -> Vec<std::ops::Range<usize>> {
    let nc = row_start.len().saturating_sub(1);
    if nc == 0 {
        return Vec::new();
    }
    let m = row_start[nc];
    let target = m.div_ceil(parts.max(1)).max(1);
    let mut ranges = Vec::new();
    let mut start_row = 0;
    while start_row < nc {
        let lo = row_start[start_row];
        let mut end_row = start_row + 1;
        while end_row < nc && row_start[end_row + 1] - lo <= target {
            end_row += 1;
        }
        ranges.push(start_row..end_row);
        start_row = end_row;
    }
    ranges
}

/// One parallel recurrence step: fills `next[e] = f(i, e)` for every
/// directed edge, with row ranges fanned out as pool jobs. Each job
/// writes the disjoint `next` subslice its rows own while reading the
/// shared `cur`, and every `next[e]` is computed by exactly the serial
/// formula — elementwise parallelism, bit-identical at any thread count.
fn step_rows_pooled(
    pool: &WorkerPool,
    row_ranges: &[std::ops::Range<usize>],
    row_start: &[usize],
    next: &mut [f64],
    f: &(dyn Fn(usize, usize) -> f64 + Sync),
) {
    // er-lint: allow(dispatch) -- callers gate the pool on `dispatch(steps_cost)` before calling
    pool.scope(|s| {
        let mut rest = next;
        let mut consumed = 0;
        for rows in row_ranges {
            let hi = row_start[rows.end];
            let (chunk, tail) = rest.split_at_mut(hi - consumed);
            rest = tail;
            let lo = consumed;
            consumed = hi;
            let rows = rows.clone();
            s.submit(move || {
                for i in rows {
                    for e in row_start[i]..row_start[i + 1] {
                        chunk[e - lo] = f(i, e);
                    }
                }
            });
        }
    });
}

/// Solves one component with the edgewise recursion and writes the
/// symmetrized probabilities into `out`. Requires the neighbor mask.
/// `bonus` is the shared `(1 + b)^α` sample vector computed by the
/// caller; all working memory comes from `scratch`. With a pool, each
/// recurrence step fans CSR row ranges out as jobs when the component's
/// estimated step cost clears the pool's dispatch cutover.
#[allow(clippy::too_many_arguments)] // mirrors the dense solver's signature plus the pool
pub(crate) fn solve_component_sparse(
    graph: &RecordGraph,
    members: &[u32],
    local_of: &[u32],
    config: &CliqueRankConfig,
    bonus: &[f64],
    pool: Option<&WorkerPool>,
    out: &mut [f64],
    scratch: &mut SparseScratch,
) {
    debug_assert!(config.neighbor_mask, "sparse kernel requires the mask");
    scratch.build_edges(graph, members, local_of, config.alpha);
    let SparseScratch {
        row_start,
        tgt,
        rev,
        mt,
        a,
        row_sum,
        hit,
        cont,
        cur,
        next,
        acc,
    } = scratch;
    let m = tgt.len();

    // Boosted per-edge quantities (same formulas as the dense kernel).
    hit.clear();
    hit.resize(m, 0.0);
    cont.clear();
    cont.resize(m, 1.0);
    for i in 0..members.len() {
        for e in row_start[i]..row_start[i + 1] {
            let aij = a[e];
            let rest = (row_sum[i] - aij).max(0.0);
            let (mut h, mut c) = (0.0, 0.0);
            for &beta in bonus {
                let denom = beta * aij + rest;
                h += beta * aij / denom;
                c += row_sum[i] / denom;
            }
            hit[e] = h / bonus.len() as f64;
            cont[e] = c / bonus.len() as f64;
        }
    }

    // From here on the CSR and per-edge coefficients are read-only;
    // reborrow shared so recurrence jobs can capture them.
    type SharedCsr<'a> = (
        &'a [usize],
        &'a [u32],
        &'a [u32],
        &'a [f64],
        &'a [f64],
        &'a [f64],
    );
    let (row_start, tgt, rev, mt, hit, cont): SharedCsr = (row_start, tgt, rev, mt, hit, cont);

    // Intra-component parallelism: fan row ranges out per step when the
    // whole recurrence is worth the coordination. The row split is fixed
    // up front (it depends only on the CSR), so steps re-use it.
    let steps_cost = (0..members.len())
        .map(|i| {
            let d = row_start[i + 1] - row_start[i];
            2 * d * d
        })
        .sum::<usize>()
        .saturating_mul(config.steps.max(1));
    let par_pool = pool.filter(|p| p.dispatch(steps_cost).is_parallel());
    let row_ranges = par_pool.map_or_else(Vec::new, |p| {
        edge_balanced_row_ranges(row_start, p.threads() * 2)
    });
    let par_pool = par_pool.filter(|_| row_ranges.len() > 1);

    // Recurrence over per-directed-edge vectors.
    let final_vals: &[f64] = match config.recurrence {
        Recurrence::PaperEq15 => {
            // M¹ = Mb = hit; acc += M^k.
            cur.clear();
            cur.extend_from_slice(hit);
            acc.clear();
            acc.extend_from_slice(hit);
            next.clear();
            next.resize(m, 0.0);
            for _ in 2..=config.steps {
                match par_pool {
                    Some(p) => {
                        let cur_ref: &[f64] = cur;
                        step_rows_pooled(p, &row_ranges, row_start, next, &|i, e| {
                            propagate(row_start, tgt, rev, mt, cur_ref, i, e)
                        });
                    }
                    None => {
                        for i in 0..members.len() {
                            let (lo, hi) = (row_start[i], row_start[i + 1]);
                            for (e, slot) in (lo..hi).zip(next[lo..hi].iter_mut()) {
                                *slot = propagate(row_start, tgt, rev, mt, cur, i, e);
                            }
                        }
                    }
                }
                for (av, &n) in acc.iter_mut().zip(next.iter()) {
                    *av += n;
                }
                std::mem::swap(cur, next);
            }
            acc
        }
        Recurrence::FirstPassage => {
            // G¹ = H; G^k = H + C ⊙ (Mt × masked(G^{k−1})).
            cur.clear();
            cur.extend_from_slice(hit);
            next.clear();
            next.resize(m, 0.0);
            for _ in 2..=config.steps {
                match par_pool {
                    Some(p) => {
                        let cur_ref: &[f64] = cur;
                        step_rows_pooled(p, &row_ranges, row_start, next, &|i, e| {
                            hit[e] + cont[e] * propagate(row_start, tgt, rev, mt, cur_ref, i, e)
                        });
                    }
                    None => {
                        for i in 0..members.len() {
                            for e in row_start[i]..row_start[i + 1] {
                                next[e] = hit[e]
                                    + cont[e] * propagate(row_start, tgt, rev, mt, cur, i, e);
                            }
                        }
                    }
                }
                std::mem::swap(cur, next);
            }
            cur
        }
    };

    // Symmetrize with per-direction clamping and write out.
    for (li, &g) in members.iter().enumerate() {
        for e in row_start[li]..row_start[li + 1] {
            let lj = tgt[e] as usize;
            let gj = members[lj];
            if gj <= g {
                continue;
            }
            let (mut fwd, mut bwd) = (final_vals[e], final_vals[rev[e] as usize]);
            if config.clamp {
                fwd = fwd.clamp(0.0, 1.0);
                bwd = bwd.clamp(0.0, 1.0);
            }
            let p = 0.5 * (fwd + bwd);
            let pair = PairNode::new(g, gj);
            let idx = graph
                .pairs()
                .binary_search(&pair)
                .expect("edge must correspond to a retained pair"); // er-lint: allow(panic) -- every graph edge comes from the retained pair universe
            out[idx] = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Kernel;
    use crate::run_cliquerank;

    fn pairs(ps: &[(u32, u32)]) -> Vec<PairNode> {
        ps.iter().map(|&(a, b)| PairNode::new(a, b)).collect()
    }

    fn sample_graphs() -> Vec<RecordGraph> {
        vec![
            // Two cliques and a bridge.
            RecordGraph::from_pair_scores(
                5,
                &pairs(&[(0, 1), (0, 2), (1, 2), (3, 4), (2, 3)]),
                &[1.0, 1.0, 1.0, 1.0, 0.05],
            ),
            // A path (very sparse).
            RecordGraph::from_pair_scores(
                6,
                &pairs(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]),
                &[0.9, 0.4, 0.8, 0.3, 0.7],
            ),
            // A star.
            RecordGraph::from_pair_scores(
                5,
                &pairs(&[(0, 1), (0, 2), (0, 3), (0, 4)]),
                &[0.5, 0.6, 0.7, 0.8],
            ),
        ]
    }

    #[test]
    fn kernels_agree_eq15() {
        for g in sample_graphs() {
            let dense = run_cliquerank(
                &g,
                &CliqueRankConfig {
                    kernel: Kernel::Dense,
                    threads: 1,
                    ..Default::default()
                },
            );
            let sparse = run_cliquerank(
                &g,
                &CliqueRankConfig {
                    kernel: Kernel::Sparse,
                    threads: 1,
                    ..Default::default()
                },
            );
            for (a, b) in dense.iter().zip(&sparse) {
                assert!((a - b).abs() < 1e-10, "dense {a} vs sparse {b}");
            }
        }
    }

    #[test]
    fn kernels_agree_first_passage() {
        for g in sample_graphs() {
            let mk = |kernel| CliqueRankConfig {
                kernel,
                threads: 1,
                recurrence: Recurrence::FirstPassage,
                ..Default::default()
            };
            let dense = run_cliquerank(&g, &mk(Kernel::Dense));
            let sparse = run_cliquerank(&g, &mk(Kernel::Sparse));
            for (a, b) in dense.iter().zip(&sparse) {
                assert!((a - b).abs() < 1e-10, "dense {a} vs sparse {b}");
            }
        }
    }

    #[test]
    fn auto_matches_both() {
        for g in sample_graphs() {
            let auto = run_cliquerank(
                &g,
                &CliqueRankConfig {
                    kernel: Kernel::Auto,
                    threads: 1,
                    ..Default::default()
                },
            );
            let dense = run_cliquerank(
                &g,
                &CliqueRankConfig {
                    kernel: Kernel::Dense,
                    threads: 1,
                    ..Default::default()
                },
            );
            for (a, b) in auto.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn scratch_reuse_across_components_matches_fresh() {
        // The same scratch solving different graphs back to back must
        // give the same answers as a fresh scratch each time.
        let cfg = CliqueRankConfig {
            kernel: Kernel::Sparse,
            threads: 1,
            ..Default::default()
        };
        let fresh: Vec<Vec<f64>> = sample_graphs()
            .iter()
            .map(|g| run_cliquerank(g, &cfg))
            .collect();
        let mut scratch = crate::cliquerank::CliqueScratch::default();
        for (g, want) in sample_graphs().iter().zip(&fresh) {
            let mut out = Vec::new();
            crate::cliquerank::run_cliquerank_into(g, &cfg, &mut scratch, &mut out);
            assert_eq!(&out, want);
        }
    }

    #[test]
    fn cost_estimate_scales_with_density() {
        let path =
            RecordGraph::from_pair_scores(4, &pairs(&[(0, 1), (1, 2), (2, 3)]), &[1.0, 1.0, 1.0]);
        let clique = RecordGraph::from_pair_scores(
            4,
            &pairs(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
            &[1.0; 6],
        );
        let members: Vec<u32> = (0..4).collect();
        assert!(sparse_step_cost(&path, &members) < sparse_step_cost(&clique, &members));
    }
}
