//! Edgewise sparse kernel for CliqueRank components.
//!
//! With the neighbor mask on, every matrix in the CliqueRank recurrence
//! is **edge-supported**: `M¹` is built from edges, and each step ends in
//! `⊙ Mn`, which zeroes everything off the adjacency. The product then
//! only ever needs edge positions:
//!
//! ```text
//! (Mt × masked)[i,j] = Σ_v Mt[i,v] · masked[v,j]
//!                    = Σ_{v ∈ N(i) ∩ N(j)} Mt[i,v] · M[v,j]
//! ```
//!
//! so one step costs `O(Σ_{(i,j)∈E} (deg i + deg j))` (two-pointer
//! intersection of sorted neighbor rows) instead of `O(n³)`. This is an
//! exact re-expression of the dense recurrence — the `kernels_agree`
//! tests pin the two against each other — and it is what makes the very
//! sparse Restaurant-style record graphs essentially free.

use er_graph::{bipartite::PairNode, RecordGraph};

use crate::cliquerank::bonus_samples;
use crate::config::{CliqueRankConfig, Recurrence};

/// Local directed-edge CSR for one component.
struct LocalEdges {
    /// Row offsets per local node (`nc + 1` entries).
    row_start: Vec<usize>,
    /// Target local id per directed edge, sorted within each row.
    tgt: Vec<u32>,
    /// Index of the opposite directed edge `(j→i)` for each `(i→j)`.
    rev: Vec<u32>,
    /// Row-normalized transition `Mt[i,j]` per directed edge.
    mt: Vec<f64>,
    /// α-scaled unnormalized weight per directed edge.
    a: Vec<f64>,
    /// Row sums of `a`.
    row_sum: Vec<f64>,
}

impl LocalEdges {
    fn build(graph: &RecordGraph, members: &[u32], local_of: &[u32], alpha: f64) -> Self {
        let nc = members.len();
        let mut row_start = Vec::with_capacity(nc + 1);
        row_start.push(0usize);
        let mut tgt = Vec::new();
        let mut a = Vec::new();
        let mut row_sum = vec![0.0f64; nc];
        for (li, &g) in members.iter().enumerate() {
            let (neighbors, sims) = graph.neighbors(g);
            let row_max = sims.iter().fold(0.0f64, |m, &v| m.max(v));
            let scale = 2.0 * row_max;
            let mut sum = 0.0;
            for (&nb, &sim) in neighbors.iter().zip(sims) {
                // `members` is sorted ascending and local ids follow that
                // order, so global neighbor order == local target order.
                let lj = local_of[nb as usize];
                debug_assert!(lj != u32::MAX);
                let v = (sim / scale).powf(alpha);
                tgt.push(lj);
                a.push(v);
                sum += v;
            }
            row_sum[li] = sum;
            row_start.push(tgt.len());
        }
        let mt: Vec<f64> = (0..nc)
            .flat_map(|i| {
                let (s, e) = (row_start[i], row_start[i + 1]);
                let denom = row_sum[i];
                a[s..e]
                    .iter()
                    .map(move |&v| if denom > 0.0 { v / denom } else { 0.0 })
            })
            .collect();
        // Reverse-edge indices via binary search in the opposite row.
        let mut rev = vec![0u32; tgt.len()];
        for i in 0..nc {
            for e in row_start[i]..row_start[i + 1] {
                let j = tgt[e] as usize;
                let (js, je) = (row_start[j], row_start[j + 1]);
                let pos = tgt[js..je]
                    .binary_search(&(i as u32))
                    .expect("undirected graph: reverse edge must exist");
                rev[e] = (js + pos) as u32;
            }
        }
        Self {
            row_start,
            tgt,
            rev,
            mt,
            a,
            row_sum,
        }
    }

    fn edge_count(&self) -> usize {
        self.tgt.len()
    }

    /// `Σ_{v ∈ N(i) ∩ N(j)} Mt[i,v] · cur[(v→j)]` for the directed edge
    /// at index `e = (i→j)`, by two-pointer merge of rows `i` and `j`.
    fn propagate(&self, cur: &[f64], i: usize, e: usize) -> f64 {
        let j = self.tgt[e] as usize;
        let (mut pi, ei) = (self.row_start[i], self.row_start[i + 1]);
        let (mut pj, ej) = (self.row_start[j], self.row_start[j + 1]);
        let mut sum = 0.0;
        while pi < ei && pj < ej {
            match self.tgt[pi].cmp(&self.tgt[pj]) {
                std::cmp::Ordering::Less => pi += 1,
                std::cmp::Ordering::Greater => pj += 1,
                std::cmp::Ordering::Equal => {
                    // Common neighbor v: row j's entry at pj is (j→v);
                    // its reverse is (v→j), whose current value we need.
                    let v_to_j = self.rev[pj] as usize;
                    sum += self.mt[pi] * cur[v_to_j];
                    pi += 1;
                    pj += 1;
                }
            }
        }
        sum
    }
}

/// Estimated per-step cost of the sparse kernel for a component:
/// `Σ_{(i,j) directed} (deg i + deg j)` two-pointer steps.
pub(crate) fn sparse_step_cost(graph: &RecordGraph, members: &[u32]) -> usize {
    let mut degs = Vec::with_capacity(members.len());
    for &g in members {
        degs.push(graph.neighbors(g).0.len());
    }
    // Σ over directed edges (i,·) of (deg_i + deg_j) = 2 Σ_i deg_i².
    let sum_sq: usize = degs.iter().map(|&d| d * d).sum();
    2 * sum_sq
}

/// Solves one component with the edgewise recursion and writes the
/// symmetrized probabilities into `out`. Requires the neighbor mask.
#[allow(clippy::needless_range_loop)]
pub(crate) fn solve_component_sparse(
    graph: &RecordGraph,
    members: &[u32],
    local_of: &[u32],
    config: &CliqueRankConfig,
    out: &mut [f64],
) {
    debug_assert!(config.neighbor_mask, "sparse kernel requires the mask");
    let edges = LocalEdges::build(graph, members, local_of, config.alpha);
    let m = edges.edge_count();
    let bonus = bonus_samples(config);

    // Boosted per-edge quantities (same formulas as the dense kernel).
    let mut hit = vec![0.0f64; m];
    let mut cont = vec![1.0f64; m];
    for i in 0..members.len() {
        for e in edges.row_start[i]..edges.row_start[i + 1] {
            let aij = edges.a[e];
            let rest = (edges.row_sum[i] - aij).max(0.0);
            let (mut h, mut c) = (0.0, 0.0);
            for &beta in &bonus {
                let denom = beta * aij + rest;
                h += beta * aij / denom;
                c += edges.row_sum[i] / denom;
            }
            hit[e] = h / bonus.len() as f64;
            cont[e] = c / bonus.len() as f64;
        }
    }

    // Recurrence over per-directed-edge vectors.
    let final_vals: Vec<f64> = match config.recurrence {
        Recurrence::PaperEq15 => {
            // M¹ = Mb = hit; acc += M^k.
            let mut cur = hit.clone();
            let mut acc = hit.clone();
            let mut next = vec![0.0f64; m];
            for _ in 2..=config.steps {
                for i in 0..members.len() {
                    for e in edges.row_start[i]..edges.row_start[i + 1] {
                        next[e] = edges.propagate(&cur, i, e);
                    }
                }
                for (a, &n) in acc.iter_mut().zip(&next) {
                    *a += n;
                }
                std::mem::swap(&mut cur, &mut next);
            }
            acc
        }
        Recurrence::FirstPassage => {
            // G¹ = H; G^k = H + C ⊙ (Mt × masked(G^{k−1})).
            let mut cur = hit.clone();
            let mut next = vec![0.0f64; m];
            for _ in 2..=config.steps {
                for i in 0..members.len() {
                    for e in edges.row_start[i]..edges.row_start[i + 1] {
                        next[e] = hit[e] + cont[e] * edges.propagate(&cur, i, e);
                    }
                }
                std::mem::swap(&mut cur, &mut next);
            }
            cur
        }
    };

    // Symmetrize with per-direction clamping and write out.
    for (li, &g) in members.iter().enumerate() {
        for e in edges.row_start[li]..edges.row_start[li + 1] {
            let lj = edges.tgt[e] as usize;
            let gj = members[lj];
            if gj <= g {
                continue;
            }
            let (mut fwd, mut bwd) = (final_vals[e], final_vals[edges.rev[e] as usize]);
            if config.clamp {
                fwd = fwd.clamp(0.0, 1.0);
                bwd = bwd.clamp(0.0, 1.0);
            }
            let p = 0.5 * (fwd + bwd);
            let pair = PairNode::new(g, gj);
            let idx = graph
                .pairs()
                .binary_search(&pair)
                .expect("edge must correspond to a retained pair");
            out[idx] = p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Kernel;
    use crate::run_cliquerank;

    fn pairs(ps: &[(u32, u32)]) -> Vec<PairNode> {
        ps.iter().map(|&(a, b)| PairNode::new(a, b)).collect()
    }

    fn sample_graphs() -> Vec<RecordGraph> {
        vec![
            // Two cliques and a bridge.
            RecordGraph::from_pair_scores(
                5,
                &pairs(&[(0, 1), (0, 2), (1, 2), (3, 4), (2, 3)]),
                &[1.0, 1.0, 1.0, 1.0, 0.05],
            ),
            // A path (very sparse).
            RecordGraph::from_pair_scores(
                6,
                &pairs(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]),
                &[0.9, 0.4, 0.8, 0.3, 0.7],
            ),
            // A star.
            RecordGraph::from_pair_scores(
                5,
                &pairs(&[(0, 1), (0, 2), (0, 3), (0, 4)]),
                &[0.5, 0.6, 0.7, 0.8],
            ),
        ]
    }

    #[test]
    fn kernels_agree_eq15() {
        for g in sample_graphs() {
            let dense = run_cliquerank(
                &g,
                &CliqueRankConfig {
                    kernel: Kernel::Dense,
                    threads: 1,
                    ..Default::default()
                },
            );
            let sparse = run_cliquerank(
                &g,
                &CliqueRankConfig {
                    kernel: Kernel::Sparse,
                    threads: 1,
                    ..Default::default()
                },
            );
            for (a, b) in dense.iter().zip(&sparse) {
                assert!((a - b).abs() < 1e-10, "dense {a} vs sparse {b}");
            }
        }
    }

    #[test]
    fn kernels_agree_first_passage() {
        for g in sample_graphs() {
            let mk = |kernel| CliqueRankConfig {
                kernel,
                threads: 1,
                recurrence: Recurrence::FirstPassage,
                ..Default::default()
            };
            let dense = run_cliquerank(&g, &mk(Kernel::Dense));
            let sparse = run_cliquerank(&g, &mk(Kernel::Sparse));
            for (a, b) in dense.iter().zip(&sparse) {
                assert!((a - b).abs() < 1e-10, "dense {a} vs sparse {b}");
            }
        }
    }

    #[test]
    fn auto_matches_both() {
        for g in sample_graphs() {
            let auto = run_cliquerank(
                &g,
                &CliqueRankConfig {
                    kernel: Kernel::Auto,
                    threads: 1,
                    ..Default::default()
                },
            );
            let dense = run_cliquerank(
                &g,
                &CliqueRankConfig {
                    kernel: Kernel::Dense,
                    threads: 1,
                    ..Default::default()
                },
            );
            for (a, b) in auto.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn cost_estimate_scales_with_density() {
        let path =
            RecordGraph::from_pair_scores(4, &pairs(&[(0, 1), (1, 2), (2, 3)]), &[1.0, 1.0, 1.0]);
        let clique = RecordGraph::from_pair_scores(
            4,
            &pairs(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
            &[1.0; 6],
        );
        let members: Vec<u32> = (0..4).collect();
        assert!(sparse_step_cost(&path, &members) < sparse_step_cost(&clique, &members));
    }
}
