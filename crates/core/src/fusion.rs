//! The fusion loop (§IV, Figure 2): ITER ⇄ CliqueRank reinforcement.
//!
//! Round r:
//! 1. ITER runs on the bipartite graph with edge weights `p` (uniform 1 on
//!    the first round) → term weights `x_t`, pair similarities `s`.
//! 2. The record graph `Gr` is rebuilt from `s`; CliqueRank turns the
//!    topology into matching probabilities `p`, which become the next
//!    round's edge weights.
//!
//! Shared terms of non-matching pairs are thereby punished (their pairs
//! carry low `p`) and terms occurring only in matching pairs promoted —
//! the reinforcement the paper quantifies in Table V. After `R` rounds,
//! pairs with `p ≥ η` are declared matches and clustered transitively.

use std::mem;
use std::time::{Duration, Instant};

use er_graph::{BipartiteGraph, RecordGraph, UnionFind};
use er_pool::WorkerPool;

use crate::cache::{run_cliquerank_cached_pooled, CliqueRankCache};
use crate::cliquerank::run_cliquerank_pooled;
use crate::config::FusionConfig;
use crate::iter::{run_iter_with_init_pooled_scratch, IterScratch};

/// Per-round diagnostics.
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// 1-based round number.
    pub round: usize,
    /// ITER iterations until convergence.
    pub iter_iterations: usize,
    /// ITER per-iteration L1 weight change (Figure 5 trace).
    pub iter_deltas: Vec<f64>,
    /// Wall time of the ITER phase.
    pub iter_time: Duration,
    /// Wall time of the CliqueRank phase.
    pub cliquerank_time: Duration,
    /// L1 change of the probability vector versus the previous round
    /// (the fusion loop's own convergence signal).
    pub probability_delta: f64,
    /// Number of edges in this round's record graph.
    pub record_graph_edges: usize,
}

/// Final output of the fusion framework.
#[derive(Debug, Clone)]
pub struct FusionOutcome {
    /// Learned term discrimination power from the final ITER run.
    pub term_weights: Vec<f64>,
    /// Final pair similarities, aligned with [`BipartiteGraph::pairs`].
    pub pair_similarities: Vec<f64>,
    /// Final matching probabilities, aligned with
    /// [`BipartiteGraph::pairs`].
    pub matching_probabilities: Vec<f64>,
    /// Record pairs with `p ≥ η`, as `(smaller id, larger id)`.
    pub matches: Vec<(u32, u32)>,
    /// Entity clusters induced by the matches (transitive closure);
    /// singletons included, sorted by smallest member.
    pub clusters: Vec<Vec<u32>>,
    /// Per-round diagnostics.
    pub rounds: Vec<RoundStats>,
    /// Per-round probability vectors (only when
    /// [`FusionConfig::record_round_probabilities`] is set) — used by the
    /// Table V reinforcement bench.
    pub round_probabilities: Vec<Vec<f64>>,
}

/// The fusion-framework driver.
///
/// ```
/// use er_core::{FusionConfig, Resolver};
/// use er_graph::BipartiteGraphBuilder;
///
/// let graph = BipartiteGraphBuilder::new(2, 2)
///     .postings(0, &[0, 1])
///     .postings(1, &[0, 1])
///     .build();
/// let outcome = Resolver::new(FusionConfig::default()).resolve(&graph);
/// assert_eq!(outcome.matches, vec![(0, 1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    config: FusionConfig,
}

impl Resolver {
    /// Creates a resolver with the given configuration.
    pub fn new(config: FusionConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FusionConfig {
        &self.config
    }

    /// Runs the full fusion loop on a prepared bipartite graph.
    ///
    /// One worker pool of [`FusionConfig::threads`] threads is created
    /// here and shared by every phase of every round (ITER, record-graph
    /// construction, CliqueRank) — persistent workers instead of
    /// per-phase thread spawns. Every phase is deterministic, so the
    /// outcome is bit-identical at any thread count.
    pub fn resolve(&self, graph: &BipartiteGraph) -> FusionOutcome {
        self.resolve_impl(graph, None)
    }

    /// [`Resolver::resolve`] with externally seeded first-round edge
    /// weights.
    ///
    /// §V-C initializes `p(ri, rj) ≡ 1`, treating every candidate pair
    /// as equally plausible until the first CliqueRank feedback. When a
    /// cheap pair similarity is already available — e.g. batched
    /// Jaro-Winkler over the record texts (`er-text`'s similarity
    /// engine) — seeding ITER's first round with it starts the
    /// reinforcement from informed edge weights instead of uniform
    /// ones. `seed` is aligned with [`BipartiteGraph::pairs`]; values
    /// must lie in `[0, 1]`. Everything downstream is unchanged and the
    /// outcome remains bit-identical at any thread count.
    pub fn resolve_seeded(&self, graph: &BipartiteGraph, seed: &[f64]) -> FusionOutcome {
        assert_eq!(
            seed.len(),
            graph.pair_count(),
            "one seed weight per candidate pair"
        );
        assert!(
            seed.iter().all(|&s| (0.0..=1.0).contains(&s)),
            "seed weights must be probabilities"
        );
        self.resolve_impl(graph, Some(seed))
    }

    /// [`Resolver::resolve`] with a component-level [`CliqueRankCache`]:
    /// each round's CliqueRank phase replays every record-graph
    /// component whose content key is already cached and solves only
    /// the rest (on the shared pool, behind its dispatch cost model).
    /// With a [`CliqueRankCache::exact`] cache the outcome is
    /// **bit-identical** to [`Resolver::resolve`] /
    /// [`Resolver::resolve_seeded`] on the same graph — replayed
    /// probabilities were produced by the same deterministic solver on
    /// an identical component — which is the contract the streaming
    /// engine (`er-serve`) builds its incremental ≡ batch guarantee on.
    ///
    /// `seed`, when given, must satisfy the
    /// [`Resolver::resolve_seeded`] alignment and range requirements.
    pub fn resolve_cached(
        &self,
        graph: &BipartiteGraph,
        seed: Option<&[f64]>,
        cache: &mut CliqueRankCache,
    ) -> FusionOutcome {
        if let Some(s) = seed {
            assert_eq!(
                s.len(),
                graph.pair_count(),
                "one seed weight per candidate pair"
            );
            assert!(
                s.iter().all(|&v| (0.0..=1.0).contains(&v)),
                "seed weights must be probabilities"
            );
        }
        self.resolve_with_cache(graph, seed, Some(cache))
    }

    fn resolve_impl(&self, graph: &BipartiteGraph, seed: Option<&[f64]>) -> FusionOutcome {
        self.resolve_with_cache(graph, seed, None)
    }

    fn resolve_with_cache(
        &self,
        graph: &BipartiteGraph,
        seed: Option<&[f64]>,
        mut cache: Option<&mut CliqueRankCache>,
    ) -> FusionOutcome {
        let cfg = &self.config;
        assert!(cfg.rounds >= 1, "need at least one fusion round");
        assert!((0.0..=1.0).contains(&cfg.eta), "eta must be a probability");
        let _fusion_span = er_obs::span("fusion");
        let pool = WorkerPool::with_policy(cfg.threads, cfg.dispatch);
        let n_pairs = graph.pair_count();
        // Structural edge admission: pairs sharing fewer than
        // `min_shared_terms` terms never enter Gr (stable across rounds).
        let admitted: Vec<bool> = (0..n_pairs as u32)
            .map(|p| graph.terms_of_pair(p).len() >= cfg.min_shared_terms)
            .collect();
        // §V-C: p(ri, rj) is initialized to 1 before CliqueRank runs —
        // unless the caller seeded the first round's edge weights.
        let mut prob = match seed {
            None => vec![1.0f64; n_pairs],
            Some(s) => s.to_vec(),
        };
        let mut rounds = Vec::with_capacity(cfg.rounds);
        let mut round_probabilities = Vec::new();
        let mut last_iter = None;
        // Round-loop sweep buffers, allocated once and reused: the ITER
        // scratch recycles the previous round's outcome, `floored` and
        // `new_prob` are refilled in place.
        let mut iter_scratch = IterScratch::new();
        let mut floored = vec![0.0f64; n_pairs];
        let mut new_prob = vec![0.0f64; n_pairs];

        for round in 1..=cfg.rounds {
            if let Some(prev) = last_iter.take() {
                iter_scratch.recycle(prev);
            }
            let t0 = Instant::now();
            let iter_out = {
                let _span = er_obs::span("iter");
                run_iter_with_init_pooled_scratch(
                    graph,
                    &prob,
                    &cfg.iter,
                    None,
                    &pool,
                    &mut iter_scratch,
                )
            };
            let iter_time = t0.elapsed();
            er_obs::counter_add("iter_iterations_total", iter_out.iterations as u64);

            let t1 = Instant::now();
            let cliquerank_span = er_obs::span("cliquerank");
            // Admission rules: structural shared-term minimum plus the
            // optional absolute similarity floor (ablation only).
            for ((slot, &s), &ok) in floored
                .iter_mut()
                .zip(&iter_out.pair_similarities)
                .zip(&admitted)
            {
                *slot = if ok && s + 1e-9 >= cfg.min_similarity {
                    s
                } else {
                    0.0
                };
            }
            let gr = RecordGraph::from_pair_scores_pooled(
                graph.record_count(),
                graph.pairs(),
                &floored,
                &pool,
            );
            let edge_probs = match cache.as_deref_mut() {
                None => run_cliquerank_pooled(&gr, &cfg.cliquerank, &pool),
                Some(c) => run_cliquerank_cached_pooled(&gr, &cfg.cliquerank, c, &pool),
            };
            drop(cliquerank_span);
            let cliquerank_time = t1.elapsed();
            er_obs::counter_add("fusion_rounds_total", 1);
            er_obs::gauge_set("record_graph_edges", gr.edge_count() as f64);

            // Map probabilities back onto the bipartite pair indexing;
            // pairs whose similarity dropped to 0 keep probability 0.
            new_prob.iter_mut().for_each(|v| *v = 0.0);
            for (pair, &p) in gr.pairs().iter().zip(&edge_probs) {
                let idx = graph
                    .pair_id(pair.a, pair.b)
                    .expect("record-graph edge must be a bipartite pair"); // er-lint: allow(panic) -- Gr edges are built from bipartite pairs above the floor
                new_prob[idx as usize] = p;
            }
            let probability_delta = prob.iter().zip(&new_prob).map(|(a, b)| (a - b).abs()).sum();
            mem::swap(&mut prob, &mut new_prob);

            rounds.push(RoundStats {
                round,
                iter_iterations: iter_out.iterations,
                iter_deltas: iter_out.deltas.clone(),
                iter_time,
                cliquerank_time,
                probability_delta,
                record_graph_edges: gr.edge_count(),
            });
            if cfg.record_round_probabilities {
                round_probabilities.push(prob.clone());
            }
            last_iter = Some(iter_out);
        }

        let iter_out = last_iter.expect("at least one round ran"); // er-lint: allow(panic) -- cfg.rounds >= 1 asserted at entry
        let (matches, clusters) = decide_matches(graph, &prob, cfg.eta);
        FusionOutcome {
            term_weights: iter_out.term_weights,
            pair_similarities: iter_out.pair_similarities,
            matching_probabilities: prob,
            matches,
            clusters,
            rounds,
            round_probabilities,
        }
    }
}

/// Thresholds probabilities at `eta` and clusters matches transitively.
pub fn decide_matches(
    graph: &BipartiteGraph,
    probabilities: &[f64],
    eta: f64,
) -> (Vec<(u32, u32)>, Vec<Vec<u32>>) {
    let mut matches = Vec::new();
    let mut uf = UnionFind::new(graph.record_count());
    for (pair, &p) in graph.pairs().iter().zip(probabilities) {
        if p >= eta {
            matches.push((pair.a, pair.b));
            uf.union(pair.a, pair.b);
        }
    }
    (matches, uf.into_sets())
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_graph::BipartiteGraphBuilder;

    /// Six records, two true entities {0,1,2} and {3,4}, plus noise
    /// record 5. Terms 0–2 are discriminative for entity A, terms 3–4 for
    /// entity B; term 5 is a common word shared across entities.
    fn two_entity_graph() -> BipartiteGraph {
        BipartiteGraphBuilder::new(6, 6)
            .postings(0, &[0, 1, 2]) // entity A model code
            .postings(1, &[0, 1, 2]) // entity A street number
            .postings(2, &[0, 2]) // entity A extra token
            .postings(3, &[3, 4]) // entity B phone
            .postings(4, &[3, 4]) // entity B name
            .postings(5, &[0, 1, 3, 5]) // common word
            .build()
    }

    fn quick_config() -> FusionConfig {
        let mut cfg = FusionConfig::default();
        cfg.cliquerank.threads = 1;
        cfg
    }

    #[test]
    fn resolves_two_entities() {
        let out = Resolver::new(quick_config()).resolve(&two_entity_graph());
        assert!(out.matches.contains(&(0, 1)), "matches: {:?}", out.matches);
        assert!(out.matches.contains(&(0, 2)));
        assert!(out.matches.contains(&(1, 2)));
        assert!(out.matches.contains(&(3, 4)));
        assert!(!out.matches.contains(&(0, 3)));
        // Clusters: {0,1,2}, {3,4}, {5}.
        assert!(out.clusters.contains(&vec![0, 1, 2]));
        assert!(out.clusters.contains(&vec![3, 4]));
        assert!(out.clusters.contains(&vec![5]));
    }

    #[test]
    fn probabilities_aligned_and_bounded() {
        let g = two_entity_graph();
        let out = Resolver::new(quick_config()).resolve(&g);
        assert_eq!(out.matching_probabilities.len(), g.pair_count());
        for &p in &out.matching_probabilities {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn round_stats_recorded() {
        let mut cfg = quick_config();
        cfg.record_round_probabilities = true;
        let out = Resolver::new(cfg).resolve(&two_entity_graph());
        assert_eq!(out.rounds.len(), 5);
        assert_eq!(out.round_probabilities.len(), 5);
        for (i, r) in out.rounds.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            assert!(r.iter_iterations >= 1);
            assert_eq!(r.iter_deltas.len(), r.iter_iterations);
        }
        // Reinforcement converges: the last round changes p less than the
        // first feedback round did.
        assert!(out.rounds.last().unwrap().probability_delta <= out.rounds[0].probability_delta);
    }

    #[test]
    fn single_round_works() {
        let mut cfg = quick_config();
        cfg.rounds = 1;
        let out = Resolver::new(cfg).resolve(&two_entity_graph());
        assert_eq!(out.rounds.len(), 1);
        assert!(out.matches.contains(&(0, 1)));
    }

    #[test]
    fn discriminative_terms_end_up_heavier_than_common() {
        let out = Resolver::new(quick_config()).resolve(&two_entity_graph());
        let w = &out.term_weights;
        assert!(
            w[0] > w[5] && w[3] > w[5],
            "discriminative {w:?} must outweigh the cross-entity common term"
        );
    }

    #[test]
    fn reinforcement_demotes_common_term_further() {
        let g = two_entity_graph();
        let mut one = quick_config();
        one.rounds = 1;
        let r1 = Resolver::new(one).resolve(&g);
        let r5 = Resolver::new(quick_config()).resolve(&g);
        let ratio = |o: &FusionOutcome| o.term_weights[5] / o.term_weights[0];
        assert!(
            ratio(&r5) < ratio(&r1) + 1e-12,
            "five rounds {} vs one round {}",
            ratio(&r5),
            ratio(&r1)
        );
    }

    #[test]
    fn empty_graph_resolves_to_nothing() {
        let g = BipartiteGraphBuilder::new(3, 1).build();
        let out = Resolver::new(quick_config()).resolve(&g);
        assert!(out.matches.is_empty());
        assert_eq!(out.clusters.len(), 3);
    }

    #[test]
    fn eta_one_is_strictest() {
        let g = two_entity_graph();
        let mut strict = quick_config();
        strict.eta = 1.0;
        let loose_out = Resolver::new(quick_config()).resolve(&g);
        let strict_out = Resolver::new(strict).resolve(&g);
        assert!(strict_out.matches.len() <= loose_out.matches.len());
    }

    #[test]
    fn outcome_identical_at_every_thread_count() {
        let g = two_entity_graph();
        let serial = Resolver::new(FusionConfig {
            threads: 1,
            ..quick_config()
        })
        .resolve(&g);
        for threads in [2, 4] {
            let parallel = Resolver::new(FusionConfig {
                threads,
                ..quick_config()
            })
            .resolve(&g);
            assert_eq!(
                serial.matching_probabilities,
                parallel.matching_probabilities
            );
            assert_eq!(serial.term_weights, parallel.term_weights);
            assert_eq!(serial.matches, parallel.matches);
            assert_eq!(serial.clusters, parallel.clusters);
        }
    }

    #[test]
    #[should_panic(expected = "at least one fusion round")]
    fn zero_rounds_rejected() {
        let mut cfg = quick_config();
        cfg.rounds = 0;
        Resolver::new(cfg).resolve(&two_entity_graph());
    }

    #[test]
    fn uniform_seed_matches_unseeded() {
        let g = two_entity_graph();
        let resolver = Resolver::new(quick_config());
        let plain = resolver.resolve(&g);
        let seeded = resolver.resolve_seeded(&g, &vec![1.0; g.pair_count()]);
        assert_eq!(plain.matching_probabilities, seeded.matching_probabilities);
        assert_eq!(plain.term_weights, seeded.term_weights);
        assert_eq!(plain.matches, seeded.matches);
    }

    #[test]
    fn seeded_outcome_identical_at_every_thread_count() {
        let g = two_entity_graph();
        // A deterministic, non-uniform seed exercising the informed
        // first round.
        let seed: Vec<f64> = (0..g.pair_count())
            .map(|i| 0.25 + 0.5 * ((i % 3) as f64) / 2.0)
            .collect();
        let serial = Resolver::new(FusionConfig {
            threads: 1,
            ..quick_config()
        })
        .resolve_seeded(&g, &seed);
        assert!(serial.matches.contains(&(0, 1)), "{:?}", serial.matches);
        for threads in [2, 4] {
            let parallel = Resolver::new(FusionConfig {
                threads,
                ..quick_config()
            })
            .resolve_seeded(&g, &seed);
            assert_eq!(
                serial.matching_probabilities,
                parallel.matching_probabilities
            );
            assert_eq!(serial.matches, parallel.matches);
        }
    }

    #[test]
    fn cached_resolve_is_bit_identical_cold_and_warm() {
        use crate::cache::CliqueRankCache;
        let g = two_entity_graph();
        let resolver = Resolver::new(quick_config());
        let plain = resolver.resolve(&g);
        let mut cache = CliqueRankCache::exact();
        let cold = resolver.resolve_cached(&g, None, &mut cache);
        assert_eq!(plain.matching_probabilities, cold.matching_probabilities);
        assert_eq!(plain.term_weights, cold.term_weights);
        assert_eq!(plain.matches, cold.matches);
        assert!(cache.misses() > 0 && cache.hits() > 0, "rounds 2+ replay");
        // Warm rerun: every round replays, output still bitwise equal.
        cache.bump_generation();
        let warm = resolver.resolve_cached(&g, None, &mut cache);
        assert_eq!(plain.matching_probabilities, warm.matching_probabilities);
        assert_eq!(plain.clusters, warm.clusters);
    }

    #[test]
    fn cached_resolve_respects_seed_validation() {
        use crate::cache::CliqueRankCache;
        let g = two_entity_graph();
        let resolver = Resolver::new(quick_config());
        let seed: Vec<f64> = (0..g.pair_count())
            .map(|i| 0.25 + 0.5 * ((i % 3) as f64) / 2.0)
            .collect();
        let plain = resolver.resolve_seeded(&g, &seed);
        let mut cache = CliqueRankCache::exact();
        let cached = resolver.resolve_cached(&g, Some(&seed), &mut cache);
        assert_eq!(plain.matching_probabilities, cached.matching_probabilities);
        assert_eq!(plain.matches, cached.matches);
    }

    #[test]
    #[should_panic(expected = "one seed weight per candidate pair")]
    fn cached_misaligned_seed_rejected() {
        let g = two_entity_graph();
        let mut cache = crate::cache::CliqueRankCache::exact();
        Resolver::new(quick_config()).resolve_cached(&g, Some(&[1.0]), &mut cache);
    }

    #[test]
    #[should_panic(expected = "one seed weight per candidate pair")]
    fn misaligned_seed_rejected() {
        let g = two_entity_graph();
        Resolver::new(quick_config()).resolve_seeded(&g, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn out_of_range_seed_rejected() {
        let g = two_entity_graph();
        Resolver::new(quick_config()).resolve_seeded(&g, &vec![1.5; g.pair_count()]);
    }
}
