//! Configuration for ITER, RSS, CliqueRank, and the fusion loop.
//!
//! Defaults are the paper's universal settings (§VII-C): `α = 20`,
//! `S = 20`, `η = 0.98`, five reinforcement rounds — used unchanged for
//! all three benchmark datasets, which is the framework's headline
//! usability claim.

/// Default worker-thread count for the parallel hot paths: the machine's
/// available parallelism (1 when it cannot be determined). Every parallel
/// phase is deterministic, so this only affects speed, never results.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Normalization applied to term weights after each ITER iteration
/// (Algorithm 1, line 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Normalization {
    /// `x ← 1 / (1 + 1/x)` — the paper's default, mapping `(0, ∞)` to
    /// `(0, 1)` monotonically.
    #[default]
    Reciprocal,
    /// L2 normalization `Σ x² = 1` — the alternative the paper mentions.
    L2,
}

/// ITER parameters. The paper stresses ITER itself "does not involve any
/// parameter that requires tuning"; these only control convergence
/// detection and the random initialization.
#[derive(Debug, Clone, Copy)]
pub struct IterConfig {
    /// Stop when the L1 change of the term-weight vector drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Term-weight normalization variant.
    pub normalization: Normalization,
    /// Seed for the random initialization of `x_t` (Algorithm 1, line 1).
    pub seed: u64,
    /// Worker threads for the pair-similarity and term-update loops.
    /// Both parallelize elementwise over disjoint output ranges, so every
    /// thread count produces bit-identical weights. Defaults to the
    /// machine's available parallelism.
    pub threads: usize,
}

impl Default for IterConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-6,
            max_iterations: 100,
            normalization: Normalization::Reciprocal,
            seed: 0x1753,
            threads: default_threads(),
        }
    }
}

/// How the `(1 + b)^α` bonus of Eq. 12 enters the transition model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoostMode {
    /// CliqueRank: average the boosted transition probability over
    /// `b ~ U(0, 1)` by midpoint quadrature with this many points.
    /// RSS samples `b` afresh each step, so this is the deterministic
    /// expectation of what RSS does (DESIGN.md §3.3).
    Expected { quadrature_points: usize },
    /// Use one fixed `b` (e.g. `0.5`). `Fixed(0.0)` keeps the bonus form
    /// but with no boost beyond the plain weight.
    Fixed(f64),
    /// Disable the bonus entirely — the ablation for the paper's
    /// big-clique argument (§VI-B).
    Off,
}

impl Default for BoostMode {
    fn default() -> Self {
        BoostMode::Expected {
            quadrature_points: 8,
        }
    }
}

/// RSS parameters (§VI-B, Algorithm 2).
#[derive(Debug, Clone, Copy)]
pub struct RssConfig {
    /// Non-linear transition exponent α (Eq. 11). Paper: 20.
    pub alpha: f64,
    /// Maximum walk length S. Paper: 20.
    pub steps: usize,
    /// Walks per edge, M (half from each endpoint). Paper leaves M
    /// unspecified; 100 gives ±0.05 standard error near p = 0.5.
    pub walks_per_edge: usize,
    /// RNG seed.
    pub seed: u64,
    /// Apply the `(1 + b)` bonus toward the target (Algorithm 3 line 4).
    pub boost: bool,
    /// Apply the early-stop rule (Algorithm 3 lines 8–9).
    pub early_stop: bool,
    /// Worker threads for the per-edge walk loop. Walks are seeded per
    /// edge, so every thread count (including 1) produces bit-identical
    /// probabilities. Defaults to the machine's available parallelism.
    pub threads: usize,
}

impl Default for RssConfig {
    fn default() -> Self {
        Self {
            alpha: 20.0,
            steps: 20,
            walks_per_edge: 100,
            seed: 0x2087,
            boost: true,
            early_stop: true,
            threads: default_threads(),
        }
    }
}

/// Which matrix recurrence CliqueRank uses to turn the rectified random
/// walk into reach probabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Recurrence {
    /// The paper's literal Eq. 15: `M¹ = Mb`, `M^k = Mt × (M^{k−1} ⊙ Mn)`,
    /// `p = Σ_k (M^k[i,j] + M^k[j,i]) / 2`, clamped to `[0, 1]`. Applies
    /// the boost only at the step entering the target and uses the
    /// unboosted `Mt` elsewhere, so per-direction sums over-count — which
    /// is precisely what lets every pair of a large heterogeneous clique
    /// accumulate probability ≈ 1 within S steps (the Paper benchmark's
    /// 192-record entity). The cost is saturation on weak-but-mutual
    /// pairs, bounded in practice by the shared-term admission rule.
    /// This is the default because it is what the paper specifies and
    /// what reproduces its Table II behaviour.
    #[default]
    PaperEq15,
    /// Target-directed first-passage probabilities:
    /// `G¹ = H`, `G^k = H + C ⊙ (Mt × (G^{k−1} ⊙ Mn))`, where `H[v,j]` is
    /// the boosted probability of stepping straight to target `j` and
    /// `C[v,j]` the complementary continuation scale. This is the exact
    /// matrix transcription of RSS's walk (per-step boost suppresses
    /// non-target transitions too) and guarantees per-direction
    /// probabilities ≤ 1; it matches RSS within sampling error but is
    /// more conservative than Eq. 15 inside large heterogeneous cliques
    /// (see the `ablation_recurrence` bench).
    FirstPassage,
}

/// CliqueRank parameters (§VI-C).
#[derive(Debug, Clone, Copy)]
pub struct CliqueRankConfig {
    /// Non-linear transition exponent α (Eq. 11). Paper: 20.
    pub alpha: f64,
    /// Number of walk steps S (the recurrence runs S − 1 products).
    /// Paper: 20.
    pub steps: usize,
    /// Bonus treatment for `Mb` (Eq. 12).
    pub boost: BoostMode,
    /// Apply the `⊙ Mn` neighbor mask (the matrix form of early stop).
    pub neighbor_mask: bool,
    /// Clamp the reach probability to `[0, 1]`. Only relevant for
    /// [`Recurrence::PaperEq15`], whose per-step sums can exceed 1;
    /// first-passage probabilities are ≤ 1 by construction.
    pub clamp: bool,
    /// The recurrence variant (see [`Recurrence`]).
    pub recurrence: Recurrence,
    /// Compute kernel per connected component (see [`Kernel`]).
    pub kernel: Kernel,
    /// Worker threads for the dense products (1 = single-threaded).
    pub threads: usize,
}

/// How a component's recurrence is materialized.
///
/// With the neighbor mask on, every matrix in the recurrence is
/// edge-supported (`⊙ Mn` zeroes all other entries), so the whole
/// computation can run on the edge list: for a directed edge `(i→j)`,
/// `(Mt × masked)[i,j] = Σ_{v ∈ N(i) ∩ N(j)} Mt[i,v] · masked[v,j]` —
/// `O(Σ_e (deg_i + deg_j))` per step instead of `O(n³)`. Exact, not an
/// approximation; on the sparse Restaurant graph it is orders of
/// magnitude faster, while dense BLAS-style products win on near-clique
/// components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Pick per component by estimated cost (default).
    #[default]
    Auto,
    /// Always use dense matrix products.
    Dense,
    /// Always use the edgewise sparse recursion (requires the neighbor
    /// mask; falls back to dense when the mask is disabled).
    Sparse,
}

impl Default for CliqueRankConfig {
    fn default() -> Self {
        Self {
            alpha: 20.0,
            steps: 20,
            boost: BoostMode::default(),
            neighbor_mask: true,
            clamp: true,
            recurrence: Recurrence::default(),
            kernel: Kernel::default(),
            threads: default_threads(),
        }
    }
}

/// Fusion-loop parameters (§IV, §VII-C).
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// ITER settings.
    pub iter: IterConfig,
    /// CliqueRank settings.
    pub cliquerank: CliqueRankConfig,
    /// Reinforcement rounds R (one round = ITER then CliqueRank).
    /// Paper: 5 (Table V).
    pub rounds: usize,
    /// Matching-probability threshold η. Paper: 0.98.
    pub eta: f64,
    /// Minimum number of shared terms for a pair to become a
    /// record-graph edge.
    ///
    /// The paper's `Gr` construction ("two records are connected only if
    /// they share at least one term") leaves unstated how pairs whose
    /// *only* connection is one weak common term avoid saturating the
    /// scale-invariant random walk (two records that are each other's
    /// only/best neighbor reach each other with probability ≈ 1 no
    /// matter how weak the edge — the corner case §VI-B mentions).
    /// Requiring two shared terms implements the paper's own
    /// characterization of matching pairs ("share a considerable number
    /// of discriminative terms") structurally, so it is stable across
    /// reinforcement rounds. Set to `1` to reproduce the raw
    /// construction (see the ablation benches and DESIGN.md §6).
    pub min_shared_terms: usize,
    /// Optional absolute ITER-similarity floor for record-graph edges
    /// (`0.0` disables). Unlike [`Self::min_shared_terms`] this is not
    /// scale-invariant across reinforcement rounds; it exists for
    /// ablation experiments.
    pub min_similarity: f64,
    /// Record each round's probability vector (needed by the Table V
    /// bench; costs `rounds × pairs` floats).
    pub record_round_probabilities: bool,
    /// Worker threads for the shared pipeline pool. [`crate::Resolver`]
    /// creates one pool of this size per `resolve` call and threads it
    /// through every phase (ITER, CliqueRank, graph construction),
    /// overriding the per-phase `threads` fields, which only govern
    /// standalone phase calls. All phases are deterministic, so this
    /// knob affects speed only. Defaults to the machine's available
    /// parallelism.
    pub threads: usize,
    /// Serial/parallel cutover for the shared pool: regions whose
    /// estimated work falls below `dispatch.serial_below` elementary
    /// operations run inline on the caller thread with zero pool
    /// coordination. Defaults to [`er_pool::DispatchPolicy::from_env`],
    /// so `ER_DISPATCH=serial|parallel|<ops>` overrides it without code
    /// changes. Dispatch affects scheduling only — results are
    /// bit-identical on either side of the cutover.
    pub dispatch: er_pool::DispatchPolicy,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self {
            iter: IterConfig::default(),
            cliquerank: CliqueRankConfig::default(),
            rounds: 5,
            eta: 0.98,
            min_shared_terms: 2,
            min_similarity: 0.0,
            record_round_probabilities: false,
            threads: default_threads(),
            dispatch: er_pool::DispatchPolicy::from_env(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let f = FusionConfig::default();
        assert_eq!(f.rounds, 5);
        assert!((f.eta - 0.98).abs() < 1e-12);
        assert_eq!(f.cliquerank.steps, 20);
        assert_eq!(f.cliquerank.alpha, 20.0);
        let r = RssConfig::default();
        assert_eq!(r.alpha, 20.0);
        assert_eq!(r.steps, 20);
    }

    #[test]
    fn boost_default_is_expected_quadrature() {
        match BoostMode::default() {
            BoostMode::Expected { quadrature_points } => assert!(quadrature_points >= 4),
            other => panic!("unexpected default {other:?}"),
        }
    }
}
