//! # er-core
//!
//! The paper's primary contribution: a graph-theoretic fusion framework
//! for unsupervised entity resolution ("A Graph-Theoretic Fusion Framework
//! for Unsupervised Entity Resolution", ICDE 2018).
//!
//! Three algorithms and the loop that fuses them:
//!
//! * [`iter`] — **ITER** (Iterative Term-Entity Ranking, §V, Algorithm 1):
//!   propagates salience between term nodes and record-pair nodes of a
//!   bipartite graph, jointly learning term discrimination power `x_t` and
//!   pair similarity `s(ri, rj)`.
//! * [`rss`] — **RSS** (Random-Surfer Sampling, §VI-B, Algorithms 2–3):
//!   estimates the matching probability `p(ri, rj)` by simulating
//!   rectified random walks on the record graph.
//! * [`cliquerank`] — **CliqueRank** (§VI-C): the matrix-form replacement
//!   for RSS; computes the same reachability probabilities with `S − 1`
//!   multiplications per connected component, reusing `M^{k−1}` and the
//!   dense kernels of `er-matrix`.
//! * [`fusion`] — the reinforcement loop of §IV: ITER's similarities feed
//!   CliqueRank's record graph; CliqueRank's probabilities come back as
//!   the bipartite edge weights; repeat for `R` rounds and threshold at
//!   `η` to decide matches.
//!
//! ```
//! use er_core::{FusionConfig, Resolver};
//! use er_graph::BipartiteGraphBuilder;
//!
//! // Records 0 and 1 share two discriminative terms; record 2 is noise.
//! let graph = BipartiteGraphBuilder::new(3, 3)
//!     .postings(0, &[0, 1])
//!     .postings(1, &[0, 1])
//!     .postings(2, &[1, 2])
//!     .build();
//! let outcome = Resolver::new(FusionConfig::default()).resolve(&graph);
//! assert!(outcome.matches.contains(&(0, 1)));
//! ```

#![deny(unsafe_code)]

pub mod cache;
pub mod cliquerank;
pub mod config;
pub mod fusion;
pub mod iter;
pub mod rss;
pub mod sparse_kernel;

pub use cache::{
    run_cliquerank_cached, run_cliquerank_cached_pooled, CachePrecision, CliqueRankCache,
};
pub use cliquerank::{
    run_cliquerank, run_cliquerank_into, run_cliquerank_pooled, solve_component_into, CliqueScratch,
};
pub use config::{
    default_threads, BoostMode, CliqueRankConfig, FusionConfig, IterConfig, Kernel, Normalization,
    RssConfig,
};
pub use fusion::{FusionOutcome, Resolver, RoundStats};
pub use iter::{
    run_iter, run_iter_pooled, run_iter_with_init, run_iter_with_init_pooled,
    run_iter_with_init_pooled_scratch, run_iter_with_init_scratch, IterOutcome, IterScratch,
};
pub use rss::{run_rss, run_rss_pooled, run_rss_subset, run_rss_subset_pooled, RssOutcome};
