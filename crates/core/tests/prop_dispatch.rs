//! Property tests for the dispatch cost model: the serial/parallel
//! cutover must never change a result, only where it is computed.
//!
//! Every test pins the same contract from a different angle: a pooled
//! run under an explicit [`DispatchPolicy`] — forced inline, forced
//! parallel, or a threshold the generated input straddles — is bitwise
//! identical to the plain serial run at 1, 2, and 8 threads. The
//! policies are constructed directly rather than read from the
//! environment so the tests cover both sides of the cutover on every
//! input, whatever `ER_DISPATCH` says.

use er_core::{
    run_cliquerank, run_cliquerank_pooled, run_iter, run_iter_pooled, CliqueRankConfig, IterConfig,
    Kernel,
};
use er_graph::bipartite::PairNode;
use er_graph::{BipartiteGraph, BipartiteGraphBuilder, RecordGraph};
use er_pool::{DispatchPolicy, WorkerPool};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// A random bipartite structure: up to 10 terms over up to 12 records.
fn bipartite() -> impl Strategy<Value = BipartiteGraph> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..12, 0..5), 1..10).prop_map(
        |postings| {
            let lists: Vec<Vec<u32>> = postings
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect();
            let mut builder = BipartiteGraphBuilder::new(12, lists.len());
            for (t, p) in lists.iter().enumerate() {
                builder = builder.postings(t as u32, p);
            }
            builder.build()
        },
    )
}

/// A random weighted record graph over up to 10 nodes.
fn record_graph() -> impl Strategy<Value = RecordGraph> {
    proptest::collection::btree_map((0u32..10, 0u32..10), 0.05f64..2.0, 1..25).prop_map(|m| {
        let mut pairs = Vec::new();
        let mut scores = Vec::new();
        for ((a, b), w) in m {
            if a < b {
                pairs.push(PairNode::new(a, b));
                scores.push(w);
            }
        }
        RecordGraph::from_pair_scores(10, &pairs, &scores)
    })
}

/// Policies covering both forced modes and thresholds an input of
/// estimated work `w` sits below, exactly at, and above.
fn straddling_policies(work: usize) -> Vec<DispatchPolicy> {
    vec![
        DispatchPolicy::always_serial(),
        DispatchPolicy::always_parallel(),
        // work < serial_below → inline: the input sits just below the bar.
        DispatchPolicy::new(work.saturating_add(1)),
        // work == serial_below → parallel: the input sits exactly at it.
        DispatchPolicy::new(work.max(1)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn iter_bit_identical_across_the_cutover(graph in bipartite(), seed in 0u64..1000) {
        // ITER's dispatch estimate is the posting count, so policies
        // built from `edge_count()` land the run on either side of the
        // cutover deterministically.
        let prob = vec![1.0; graph.pair_count()];
        let cfg = IterConfig { seed, threads: 1, ..Default::default() };
        let serial = run_iter(&graph, &prob, &cfg);
        for threads in THREADS {
            for policy in straddling_policies(graph.edge_count()) {
                let pool = WorkerPool::with_policy(threads, policy);
                let pooled = run_iter_pooled(&graph, &prob, &cfg, &pool);
                let a: Vec<u64> = serial.term_weights.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = pooled.term_weights.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(a, b, "threads={} policy={:?}", threads, policy);
                prop_assert_eq!(&serial.pair_similarities, &pooled.pair_similarities);
                prop_assert_eq!(serial.iterations, pooled.iterations);
            }
        }
    }

    #[test]
    fn cliquerank_dense_bit_identical_across_the_cutover(
        graph in record_graph(),
        steps in 1usize..8,
    ) {
        let cfg = CliqueRankConfig { steps, threads: 1, kernel: Kernel::Dense, ..Default::default() };
        let serial = run_cliquerank(&graph, &cfg);
        for threads in THREADS {
            // Component cost estimates are internal, so straddle with a
            // spread of thresholds from forced-inline down to
            // forced-parallel (1 puts every nonempty component above
            // the bar, exercising the intra-parallel big-component path).
            for policy in [
                DispatchPolicy::always_serial(),
                DispatchPolicy::new(64),
                DispatchPolicy::new(1),
                DispatchPolicy::always_parallel(),
            ] {
                let pool = WorkerPool::with_policy(threads, policy);
                let pooled = run_cliquerank_pooled(&graph, &cfg, &pool);
                let a: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = pooled.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(a, b, "threads={} policy={:?}", threads, policy);
            }
        }
    }

    #[test]
    fn cliquerank_sparse_bit_identical_across_the_cutover(
        graph in record_graph(),
        steps in 1usize..8,
    ) {
        let cfg = CliqueRankConfig { steps, threads: 1, kernel: Kernel::Sparse, ..Default::default() };
        let serial = run_cliquerank(&graph, &cfg);
        for threads in THREADS {
            for policy in [
                DispatchPolicy::always_serial(),
                DispatchPolicy::new(64),
                DispatchPolicy::new(1),
                DispatchPolicy::always_parallel(),
            ] {
                let pool = WorkerPool::with_policy(threads, policy);
                let pooled = run_cliquerank_pooled(&graph, &cfg, &pool);
                let a: Vec<u64> = serial.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = pooled.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(a, b, "threads={} policy={:?}", threads, policy);
            }
        }
    }
}
