//! Property tests for ITER, RSS, and CliqueRank on randomly generated
//! structures: bounds, determinism, convergence, and cross-checks
//! between the stochastic and matrix formulations.

use er_core::{
    run_cliquerank, run_cliquerank_pooled, run_iter, run_iter_pooled, run_rss, run_rss_pooled,
    CliqueRankConfig, IterConfig, RssConfig,
};
use er_graph::bipartite::PairNode;
use er_graph::{BipartiteGraph, BipartiteGraphBuilder, RecordGraph};
use er_pool::WorkerPool;
use proptest::prelude::*;

/// A random bipartite structure: up to 10 terms over up to 12 records.
fn bipartite() -> impl Strategy<Value = BipartiteGraph> {
    proptest::collection::vec(proptest::collection::btree_set(0u32..12, 0..5), 1..10).prop_map(
        |postings| {
            let lists: Vec<Vec<u32>> = postings
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect();
            let mut builder = BipartiteGraphBuilder::new(12, lists.len());
            for (t, p) in lists.iter().enumerate() {
                builder = builder.postings(t as u32, p);
            }
            builder.build()
        },
    )
}

/// A random weighted record graph over up to 10 nodes.
fn record_graph() -> impl Strategy<Value = RecordGraph> {
    proptest::collection::btree_map((0u32..10, 0u32..10), 0.05f64..2.0, 1..25).prop_map(|m| {
        let mut pairs = Vec::new();
        let mut scores = Vec::new();
        for ((a, b), w) in m {
            if a < b {
                pairs.push(PairNode::new(a, b));
                scores.push(w);
            }
        }
        RecordGraph::from_pair_scores(10, &pairs, &scores)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn iter_weights_bounded_and_deterministic(graph in bipartite(), seed in 0u64..1000) {
        let prob = vec![1.0; graph.pair_count()];
        let cfg = IterConfig { seed, ..Default::default() };
        let a = run_iter(&graph, &prob, &cfg);
        let b = run_iter(&graph, &prob, &cfg);
        prop_assert_eq!(&a.term_weights, &b.term_weights);
        for (t, &w) in a.term_weights.iter().enumerate() {
            prop_assert!((0.0..1.0).contains(&w), "term {}: {}", t, w);
            if graph.pt(t as u32) == 0 {
                prop_assert_eq!(w, 0.0);
            }
        }
        // Pair similarity equals the sum of its terms' weights.
        for p in 0..graph.pair_count() as u32 {
            let sum: f64 = graph.terms_of_pair(p).iter().map(|&t| a.term_weights[t as usize]).sum();
            prop_assert!((a.pair_similarities[p as usize] - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn iter_fixed_point_is_seed_independent(graph in bipartite()) {
        // Theorem 1: the iteration converges to the principal eigenvector
        // direction regardless of the random start.
        let prob = vec![1.0; graph.pair_count()];
        let tight = |seed| IterConfig { seed, tolerance: 1e-12, max_iterations: 500, ..Default::default() };
        let a = run_iter(&graph, &prob, &tight(1));
        let b = run_iter(&graph, &prob, &tight(987654));
        if a.converged && b.converged {
            for (x, y) in a.term_weights.iter().zip(&b.term_weights) {
                prop_assert!((x - y).abs() < 1e-4, "{} vs {}", x, y);
            }
        }
    }

    #[test]
    fn cliquerank_outputs_probabilities(graph in record_graph(), steps in 1usize..12) {
        let cfg = CliqueRankConfig { steps, threads: 1, ..Default::default() };
        let p = run_cliquerank(&graph, &cfg);
        prop_assert_eq!(p.len(), graph.pairs().len());
        for &v in &p {
            prop_assert!((0.0..=1.0).contains(&v), "{}", v);
        }
        // Determinism.
        prop_assert_eq!(p, run_cliquerank(&graph, &cfg));
    }

    #[test]
    fn cliquerank_first_passage_monotone_in_steps(graph in record_graph()) {
        // More steps can only increase a first-passage probability.
        let cfg = |steps| CliqueRankConfig {
            steps,
            threads: 1,
            recurrence: er_core::config::Recurrence::FirstPassage,
            ..Default::default()
        };
        let short = run_cliquerank(&graph, &cfg(3));
        let long = run_cliquerank(&graph, &cfg(10));
        for (s, l) in short.iter().zip(&long) {
            prop_assert!(l + 1e-9 >= *s, "steps must not reduce reach probability: {} -> {}", s, l);
        }
    }

    #[test]
    fn sparse_and_dense_kernels_agree(graph in record_graph(), steps in 1usize..10) {
        use er_core::Kernel;
        let mk = |kernel| CliqueRankConfig { kernel, steps, threads: 1, ..Default::default() };
        let dense = run_cliquerank(&graph, &mk(Kernel::Dense));
        let sparse = run_cliquerank(&graph, &mk(Kernel::Sparse));
        for (a, b) in dense.iter().zip(&sparse) {
            prop_assert!((a - b).abs() < 1e-9, "dense {} vs sparse {}", a, b);
        }
    }

    #[test]
    fn rss_within_bounds_and_deterministic(graph in record_graph()) {
        let cfg = RssConfig { walks_per_edge: 20, ..Default::default() };
        let a = run_rss(&graph, &cfg);
        prop_assert_eq!(a.probabilities.len(), graph.pairs().len());
        for &v in &a.probabilities {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let b = run_rss(&graph, &cfg);
        prop_assert_eq!(a.probabilities, b.probabilities);
    }

    #[test]
    fn iter_pooled_bit_identical_across_threads(graph in bipartite(), seed in 0u64..1000) {
        // The worker pool must never change ITER's result, only its
        // wall clock: every float written in parallel lands in a
        // disjoint slot and reductions stay serial.
        let prob = vec![1.0; graph.pair_count()];
        let cfg = IterConfig { seed, threads: 1, ..Default::default() };
        let serial = run_iter(&graph, &prob, &cfg);
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let pooled = run_iter_pooled(&graph, &prob, &cfg, &pool);
            prop_assert_eq!(&serial.term_weights, &pooled.term_weights, "threads={}", threads);
            prop_assert_eq!(&serial.pair_similarities, &pooled.pair_similarities);
            prop_assert_eq!(serial.iterations, pooled.iterations);
        }
    }

    #[test]
    fn rss_pooled_bit_identical_across_threads(graph in record_graph(), seed in 0u64..1000) {
        // Each edge draws from its own (seed, edge_id)-derived RNG, so
        // the estimate is independent of how edges are sharded.
        let cfg = RssConfig { walks_per_edge: 8, seed, threads: 1, ..Default::default() };
        let serial = run_rss(&graph, &cfg);
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let pooled = run_rss_pooled(&graph, &cfg, &pool);
            prop_assert_eq!(&serial.probabilities, &pooled.probabilities, "threads={}", threads);
        }
    }

    #[test]
    fn cliquerank_pooled_bit_identical_across_threads(graph in record_graph(), steps in 1usize..10) {
        // Components are solved independently, so their assignment to
        // workers cannot change any probability.
        let cfg = CliqueRankConfig { steps, threads: 1, ..Default::default() };
        let serial = run_cliquerank(&graph, &cfg);
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let pooled = run_cliquerank_pooled(&graph, &cfg, &pool);
            prop_assert_eq!(&serial, &pooled, "threads={}", threads);
        }
    }

    #[test]
    fn isolated_two_cliques_always_resolve(w1 in 0.2f64..3.0, w2 in 0.2f64..3.0) {
        // Two disjoint triangles with arbitrary (uniform) weights: every
        // edge is intra-clique and must get probability ~1 regardless of
        // the absolute similarity scale (scale invariance).
        let pairs = vec![
            PairNode::new(0, 1), PairNode::new(0, 2), PairNode::new(1, 2),
            PairNode::new(3, 4), PairNode::new(3, 5), PairNode::new(4, 5),
        ];
        let scores = vec![w1, w1, w1, w2, w2, w2];
        let graph = RecordGraph::from_pair_scores(6, &pairs, &scores);
        let p = run_cliquerank(&graph, &CliqueRankConfig { threads: 1, ..Default::default() });
        for &v in &p {
            prop_assert!(v > 0.95, "intra-clique edge below threshold: {}", v);
        }
    }
}
