//! Size-bucketed scratch arena for dense matrices.
//!
//! CliqueRank solves thousands of connected components per fusion round,
//! each needing half a dozen `nc × nc` matrices for the recurrence.
//! Allocating them per component dominates small-component wall clock;
//! this arena lends buffers out instead and takes them back, so a worker
//! that processes a stream of components reaches a **zero-allocation
//! steady state** once its buckets are warm.
//!
//! Buffers are bucketed by the power of two bounding their length:
//! [`MatrixArena::take`] pops from the bucket of `len.next_power_of_two()`
//! (allocating exactly that capacity on a miss) and
//! [`MatrixArena::recycle`] files a buffer under the largest power of two
//! its capacity covers. Bucketing keeps a 10-node component from pinning
//! the 500-node component's multi-megabyte buffer while both sizes recur
//! in the same stream.
//!
//! # Lifetime rules
//!
//! The arena owns nothing that is out on loan: `take` moves the buffer
//! into an ordinary [`Matrix`], and only an explicit `recycle` returns
//! it. A leaked (never-recycled) matrix is merely a missed reuse, never
//! unsoundness — there is no `Drop` magic and no aliasing. Arenas are
//! single-threaded by design; parallel callers keep one arena per worker
//! (see `er_pool::ScratchSlot`).

use crate::dense::Matrix;

/// A pool of reusable row-major `f64` buffers, bucketed by capacity.
#[derive(Debug, Default)]
pub struct MatrixArena {
    /// `buckets[e]` holds free buffers whose capacity is in
    /// `[1 << e, 1 << (e + 1))`.
    buckets: Vec<Vec<Vec<f64>>>,
    fresh: usize,
    reused: usize,
}

impl MatrixArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers allocated because no bucket could serve the request.
    pub fn fresh_allocations(&self) -> usize {
        self.fresh
    }

    /// Requests served from a bucket without allocating.
    pub fn reuses(&self) -> usize {
        self.reused
    }

    /// Lends out a zeroed `rows × cols` matrix, reusing a bucketed
    /// buffer when one is large enough.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = (rows * cols).max(1);
        let e = need.next_power_of_two().trailing_zeros() as usize;
        if self.buckets.len() <= e {
            self.buckets.resize_with(e + 1, Vec::new);
        }
        let mut buf = if let Some(buf) = self.buckets[e].pop() {
            self.reused += 1;
            buf
        } else {
            self.fresh += 1;
            Vec::with_capacity(1 << e)
        };
        debug_assert!(buf.capacity() >= need);
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Matrix::from_vec(rows, cols, buf)
    }

    /// Returns a matrix's buffer to the arena for reuse.
    pub fn recycle(&mut self, m: Matrix) {
        let buf = m.into_vec();
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        // Largest e with (1 << e) <= cap, so a bucket never over-promises.
        let e = (usize::BITS - 1 - cap.leading_zeros()) as usize;
        if self.buckets.len() <= e {
            self.buckets.resize_with(e + 1, Vec::new);
        }
        self.buckets[e].push(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_matrix() {
        let mut arena = MatrixArena::new();
        let mut m = arena.take(3, 4);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert!(m.data().iter().all(|&v| v == 0.0));
        m.set(1, 2, 7.0);
        arena.recycle(m);
        // The dirty buffer comes back zeroed.
        let m2 = arena.take(3, 4);
        assert!(m2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn same_size_round_trip_reuses() {
        let mut arena = MatrixArena::new();
        let m = arena.take(10, 10);
        arena.recycle(m);
        let _m = arena.take(10, 10);
        assert_eq!(arena.fresh_allocations(), 1);
        assert_eq!(arena.reuses(), 1);
    }

    #[test]
    fn smaller_request_reuses_bucket_only_if_it_covers() {
        let mut arena = MatrixArena::new();
        // 100 elements → capacity 128 → bucket 7; a 60-element request
        // also needs bucket 6..=7 coverage: next_pow2(60) = 64 → bucket 6,
        // so the 128-capacity buffer is NOT reused (it sits in bucket 7).
        let m = arena.take(10, 10);
        arena.recycle(m);
        let _small = arena.take(6, 10);
        assert_eq!(arena.fresh_allocations(), 2);
        // But an equal-bucket request is.
        let _again = arena.take(9, 12); // 108 → bucket 7
        assert_eq!(arena.reuses(), 1);
    }

    #[test]
    fn zero_sized_take_is_fine() {
        let mut arena = MatrixArena::new();
        let m = arena.take(0, 5);
        assert_eq!(m.rows(), 0);
        arena.recycle(m);
    }

    #[test]
    fn steady_state_allocates_nothing_new() {
        let mut arena = MatrixArena::new();
        let sizes = [(5usize, 5usize), (17, 17), (3, 9), (17, 17)];
        for &(r, c) in &sizes {
            let m = arena.take(r, c);
            arena.recycle(m);
        }
        let fresh_after_warmup = arena.fresh_allocations();
        for _ in 0..10 {
            for &(r, c) in &sizes {
                let m = arena.take(r, c);
                arena.recycle(m);
            }
        }
        assert_eq!(arena.fresh_allocations(), fresh_after_warmup);
    }
}
