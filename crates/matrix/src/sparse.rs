//! CSR sparse matrix with sparse × dense products.
//!
//! The record graphs of the Restaurant-scale datasets are very sparse
//! (858 nodes, 5 320 edges), so materializing dense transition matrices
//! wastes both memory and flops. CliqueRank can keep the transition
//! matrix `Mt` in CSR form and multiply it into the dense reachability
//! accumulator: `cost = O(nnz · n)` instead of `O(n³)`.

use crate::dense::Matrix;
use crate::invariant::{debug_validate, InvariantViolation};

/// A CSR sparse `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from `(row, col, value)` triplets. Duplicate coordinates are
    /// summed; explicit zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut sorted: Vec<(u32, u32, f64)> = triplets
            .iter()
            .copied()
            .filter(|&(r, c, v)| {
                assert!(
                    (r as usize) < rows && (c as usize) < cols,
                    "triplet out of range"
                );
                v != 0.0
            })
            .collect();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            indptr[r as usize + 1] += 1;
        }
        for i in 0..rows {
            indptr[i + 1] += indptr[i];
        }
        let indices = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        let m = Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        };
        debug_validate("CsrMatrix::from_triplets", || m.validate());
        m
    }

    /// Assembles a matrix directly from its CSR arrays, **without
    /// validating them**. This is the raw seam the property tests use to
    /// build deliberately corrupted instances for [`CsrMatrix::validate`];
    /// everything else should go through [`CsrMatrix::from_triplets`].
    /// An invalid instance may panic (out-of-bounds indexing) in any
    /// later operation — safe code, but garbage answers.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Checks every structural invariant of the CSR form:
    ///
    /// * `indptr` has `rows + 1` entries, starts at 0, is nondecreasing,
    ///   and its last entry equals `indices.len()` and `values.len()`;
    /// * within each row, column indices are strictly ascending (sorted,
    ///   no duplicate coordinates) and in `0..cols`;
    /// * every stored value is finite and non-zero (the canonical form
    ///   [`CsrMatrix::from_triplets`] produces has no explicit zeros).
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        let err = |detail: String| Err(InvariantViolation::new("CsrMatrix", detail));
        if self.indptr.len() != self.rows + 1 {
            return err(format!(
                "indptr has {} entries for {} rows (want rows + 1)",
                self.indptr.len(),
                self.rows
            ));
        }
        if self.indptr[0] != 0 {
            return err(format!("indptr[0] = {} (want 0)", self.indptr[0]));
        }
        if let Some(r) = (0..self.rows).find(|&r| self.indptr[r] > self.indptr[r + 1]) {
            return err(format!(
                "indptr decreases at row {r}: {} > {}",
                self.indptr[r],
                self.indptr[r + 1]
            ));
        }
        if self.indptr[self.rows] != self.indices.len() || self.indices.len() != self.values.len() {
            return err(format!(
                "lengths disagree: indptr ends at {}, {} indices, {} values",
                self.indptr[self.rows],
                self.indices.len(),
                self.values.len()
            ));
        }
        for r in 0..self.rows {
            let row = &self.indices[self.indptr[r]..self.indptr[r + 1]];
            if let Some(w) = row.windows(2).find(|w| w[0] >= w[1]) {
                return err(format!(
                    "row {r} columns not strictly ascending: {} then {}",
                    w[0], w[1]
                ));
            }
            if let Some(&c) = row.last().filter(|&&c| c as usize >= self.cols) {
                return err(format!(
                    "row {r} column {c} out of bounds (cols = {})",
                    self.cols
                ));
            }
        }
        if let Some((i, &v)) = self
            .values
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite() || **v == 0.0)
        {
            return err(format!("value #{i} is {v} (want finite, non-zero)"));
        }
        Ok(())
    }

    /// Checks that every row is a probability distribution: entries in
    /// `[0, 1]` and each row summing to 1 within `tol` — or to exactly 0
    /// (a dangling row). The transition matrices CliqueRank builds must
    /// hold this before entering the power recurrence.
    pub fn validate_row_stochastic(&self, tol: f64) -> Result<(), InvariantViolation> {
        self.validate()?;
        for r in 0..self.rows {
            let (_, vals) = self.row(r);
            if let Some(&v) = vals.iter().find(|v| !(0.0..=1.0 + tol).contains(*v)) {
                return Err(InvariantViolation::new(
                    "CsrMatrix",
                    format!("row {r} has transition probability {v} outside [0, 1]"),
                ));
            }
            let sum: f64 = vals.iter().sum();
            if sum != 0.0 && (sum - 1.0).abs() > tol {
                return Err(InvariantViolation::new(
                    "CsrMatrix",
                    format!("row {r} sums to {sum} (want 1 ± {tol} or exactly 0)"),
                ));
            }
        }
        Ok(())
    }

    /// Converts a dense matrix, keeping only non-zeros.
    pub fn from_dense(m: &Matrix) -> Self {
        let mut triplets = Vec::new();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m.get(r, c);
                if v != 0.0 {
                    triplets.push((r as u32, c as u32, v));
                }
            }
        }
        Self::from_triplets(m.rows(), m.cols(), &triplets)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zeros of row `r` as `(col indices, values)`.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        (&self.indices[s..e], &self.values[s..e])
    }

    /// Element lookup (O(log nnz(row))).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        cols.binary_search(&(c as u32)).map_or(0.0, |i| vals[i])
    }

    /// Densifies.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m.set(r, c as usize, v);
            }
        }
        m
    }

    /// Sparse × dense product: `self (r×k) · rhs (k×n) → dense (r×n)`,
    /// `O(nnz · n)`.
    #[allow(clippy::needless_range_loop)]
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "inner dimensions must agree");
        debug_validate("CsrMatrix::matmul_dense (lhs)", || self.validate());
        debug_validate("CsrMatrix::matmul_dense (rhs)", || rhs.validate());
        let n = rhs.cols();
        let mut out = Matrix::zeros(self.rows, n);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let out_row = out.row_mut(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let rhs_row = rhs.row(c as usize);
                for (o, b) in out_row.iter_mut().zip(rhs_row) {
                    *o += v * b;
                }
            }
        }
        out
    }

    /// Sparse matrix–vector product.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        debug_validate("CsrMatrix::matvec", || self.validate());
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            out[r] = cols
                .iter()
                .zip(vals)
                .map(|(&c, &v)| v * x[c as usize])
                .sum();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul_naive;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 3.0), (1, 2, 4.0), (2, 2, 5.0)])
    }

    #[test]
    fn round_trip_dense() {
        let s = sample();
        let d = s.to_dense();
        assert_eq!(CsrMatrix::from_dense(&d), s);
        assert_eq!(d.get(1, 2), 4.0);
        assert_eq!(s.get(1, 2), 4.0);
        assert_eq!(s.get(0, 0), 0.0);
        assert_eq!(s.nnz(), 4);
    }

    #[test]
    fn duplicates_summed_zeros_dropped() {
        let s = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]);
        assert_eq!(s.get(0, 0), 3.0);
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let s = sample();
        let d = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 3.0]]);
        let sparse_prod = s.matmul_dense(&d);
        let dense_prod = matmul_naive(&s.to_dense(), &d);
        assert!(sparse_prod.approx_eq(&dense_prod, 1e-12));
    }

    #[test]
    fn matvec_matches_rows() {
        let s = sample();
        let y = s.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![4.0, 15.0, 15.0]);
    }

    #[test]
    fn empty_matrix() {
        let s = CsrMatrix::from_triplets(0, 0, &[]);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.to_dense().rows(), 0);
    }

    #[test]
    fn empty_rows_handled() {
        let s = CsrMatrix::from_triplets(4, 4, &[(3, 0, 1.0)]);
        assert_eq!(s.row(0).0.len(), 0);
        assert_eq!(s.row(3).0, &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        CsrMatrix::from_triplets(2, 2, &[(5, 0, 1.0)]);
    }
}
