//! # er-matrix
//!
//! Dense and sparse matrix kernels for the CliqueRank algorithm (§VI-C).
//!
//! The paper offloads its `S − 1` repeated multiplications of `n × n`
//! transition matrices to Eigen with multi-threading; this crate is the
//! equivalent substrate: a row-major dense [`Matrix`] with a cache-blocked
//! multiply (optionally split across threads with crossbeam), the Hadamard
//! (element-wise) product used by the `M^{k−1} ⊙ Mn` masking step, and a
//! CSR sparse matrix for sparse–dense products on sparse record graphs.
//!
//! ```
//! use er_matrix::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

#![deny(unsafe_code)]

pub mod arena;
pub mod dense;
pub mod invariant;
pub mod matmul;
pub mod pack;
pub mod sparse;

pub use arena::MatrixArena;
pub use dense::Matrix;
pub use invariant::InvariantViolation;
pub use matmul::{
    matmul_blocked, matmul_naive, matmul_packed, matmul_packed_into, matmul_pooled,
    matmul_pooled_into, matmul_threaded, matmul_threaded_into,
};
pub use pack::{matmul_packed_rows, PackScratch, KC, MR, NR};
pub use sparse::CsrMatrix;
