//! Matrix multiplication kernels.
//!
//! CliqueRank performs `S − 1` products of `n × n` matrices per connected
//! component per fusion round, so this is the framework's hottest kernel.
//! The implementations, all producing identical results:
//!
//! * [`matmul_naive`] — reference i-k-j loop over row slices; what the
//!   others are tested against.
//! * [`matmul_blocked`] — i-k-j loop order (unit-stride inner loop) with
//!   cache blocking; retained as the comparison baseline for benches.
//! * [`matmul_packed`] — packed register-tiled microkernel
//!   ([`crate::pack`]); the default ([`Matrix::matmul`]).
//! * [`matmul_threaded`] — row-band parallelism over the packed kernel
//!   via crossbeam scoped threads, standing in for Eigen's multi-threaded
//!   GEMM on the paper's 32-core server.
//! * [`matmul_pooled`] — the same row-band decomposition submitted to a
//!   shared [`er_pool::WorkerPool`], so pipeline phases reuse one set of
//!   persistent workers instead of spawning threads per product.
//!
//! Row bands are computed independently, so the threaded and pooled
//! variants are bit-identical to [`matmul_packed`] at any thread count.
//! For depths `k ≤ `[`KC`](crate::pack::KC) every kernel here is bit-identical to every
//! other (each output element accumulates its products in ascending `k`
//! order); past one packed panel the packed family differs from
//! naive/blocked only by panel-boundary rounding.
//!
//! Every allocating front end has an `*_into` twin that writes into a
//! caller-owned [`Matrix`] (reshaped in place) and borrows a
//! [`PackScratch`], so hot recurrences reach zero steady-state
//! allocations.

use er_pool::WorkerPool;

use crate::dense::Matrix;
use crate::invariant::debug_validate;
use crate::pack::{self, matmul_packed_rows, PackScratch};

/// Cache block edge (in elements). 64 × 64 f64 tiles ≈ 32 KiB per operand
/// pair, comfortably inside L1+L2 on commodity cores.
const BLOCK: usize = 64;

/// Reference product (`O(n³)`, no blocking): i-k-j order over row
/// slices, so the baseline pays neither per-element bounds checks nor
/// the strided column walk of the textbook i-j-k loop. Each output
/// element still accumulates its `k` products in strictly ascending
/// order, so this is bit-identical to the i-j-k scalar formulation.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, n) = (a.rows(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (p, &aval) in a_row.iter().enumerate() {
            for (o, &bv) in out_row.iter_mut().zip(b.row(p)) {
                *o += aval * bv;
            }
        }
    }
    out
}

/// Cache-blocked product with i-k-j inner ordering.
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    debug_validate("matmul_blocked (lhs)", || a.validate());
    debug_validate("matmul_blocked (rhs)", || b.validate());
    let (m, n) = (a.rows(), b.cols());
    let mut out = Matrix::zeros(m, n);
    matmul_block_into(a, b, out.data_mut(), 0, m);
    out
}

/// Multiplies rows `row_start..row_end` of `a` by `b` into `out_rows`
/// (a row-major buffer of exactly `(row_end − row_start) × b.cols()`).
#[allow(clippy::needless_range_loop)]
fn matmul_block_into(
    a: &Matrix,
    b: &Matrix,
    out_rows: &mut [f64],
    row_start: usize,
    row_end: usize,
) {
    let k = a.cols();
    let n = b.cols();
    debug_assert_eq!(out_rows.len(), (row_end - row_start) * n);
    for kk in (0..k).step_by(BLOCK) {
        let k_hi = (kk + BLOCK).min(k);
        for jj in (0..n).step_by(BLOCK) {
            let j_hi = (jj + BLOCK).min(n);
            for i in row_start..row_end {
                let a_row = a.row(i);
                let out_row = &mut out_rows[(i - row_start) * n..(i - row_start + 1) * n];
                for p in kk..k_hi {
                    let aval = a_row[p];
                    if aval == 0.0 {
                        continue; // transition matrices are mostly sparse
                    }
                    let b_row = &b.row(p)[jj..j_hi];
                    let o = &mut out_row[jj..j_hi];
                    for (ov, bv) in o.iter_mut().zip(b_row) {
                        *ov += aval * bv;
                    }
                }
            }
        }
    }
}

/// Packed register-tiled product ([`crate::pack`]); the default kernel
/// behind [`Matrix::matmul`]. Allocates the output and a transient
/// [`PackScratch`]; hot loops use [`matmul_packed_into`] instead.
pub fn matmul_packed(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    let mut scratch = PackScratch::default();
    matmul_packed_into(a, b, &mut out, &mut scratch);
    out
}

/// Packed product into a caller-owned output (reshaped in place) using
/// caller-owned packing buffers. Allocation-free once `out` and
/// `scratch` have grown to the largest shape they serve.
pub fn matmul_packed_into(a: &Matrix, b: &Matrix, out: &mut Matrix, scratch: &mut PackScratch) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    debug_validate("matmul_packed (lhs)", || a.validate());
    debug_validate("matmul_packed (rhs)", || b.validate());
    let (m, n) = (a.rows(), b.cols());
    er_obs::counter_add("matmul_packed_total", 1);
    out.reset(m, n);
    matmul_packed_rows(a, b, out.data_mut(), 0, m, scratch);
}

/// Packed product with the row range split across `threads` crossbeam
/// scoped threads. `threads == 1` (or tiny matrices) falls through to the
/// single-threaded kernel.
pub fn matmul_threaded(a: &Matrix, b: &Matrix, threads: usize) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    let mut scratch = PackScratch::default();
    matmul_threaded_into(a, b, &mut out, threads, &mut scratch);
    out
}

/// [`matmul_threaded`] into a caller-owned output. The serial
/// fall-through (`threads == 1` or a tiny product) uses the caller's
/// `scratch` and allocates nothing; parallel bands pack into per-thread
/// buffers, so per-row output words are written by exactly one thread
/// and the result is bit-identical to the serial kernel.
pub fn matmul_threaded_into(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    threads: usize,
    scratch: &mut PackScratch,
) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    debug_validate("matmul_threaded (lhs)", || a.validate());
    debug_validate("matmul_threaded (rhs)", || b.validate());
    let (m, n) = (a.rows(), b.cols());
    let threads = threads.max(1).min(m.max(1));
    if threads == 1 || m * n < 64 * 64 {
        matmul_packed_into(a, b, out, scratch);
        return;
    }
    out.reset(m, n);
    let rows_per = m.div_ceil(threads);
    {
        let mut bands: Vec<&mut [f64]> = out.data_mut().chunks_mut(rows_per * n).collect();
        crossbeam::thread::scope(|scope| {
            for (t, band) in bands.drain(..).enumerate() {
                let row_start = t * rows_per;
                let row_end = (row_start + rows_per).min(m);
                scope.spawn(move |_| {
                    let mut local = PackScratch::default();
                    matmul_packed_rows(a, b, band, row_start, row_end, &mut local);
                });
            }
        })
        .expect("matmul worker thread panicked"); // er-lint: allow(panic) -- re-raises a worker panic on the caller thread
    }
}

/// Packed product with row bands submitted as jobs to a shared worker
/// pool. Identical banding (and therefore bit-identical results) to
/// [`matmul_threaded`]; serial pools and tiny products fall through to
/// the single-threaded kernel.
pub fn matmul_pooled(a: &Matrix, b: &Matrix, pool: &WorkerPool) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    let mut scratch = PackScratch::default();
    matmul_pooled_into(a, b, &mut out, pool, &mut scratch);
    out
}

/// [`matmul_pooled`] into a caller-owned output.
///
/// The serial/parallel decision goes through the pool's
/// [`er_pool::DispatchPolicy`] on the product's multiply-add count
/// (`m·n·k`), so sub-cutover products run the serial packed kernel with
/// zero pool coordination. Parallel products pack each `B` panel **once**
/// on the caller thread and fan `MR`-aligned row strips out as jobs;
/// each job checks a private `A`-strip buffer out of the scratch's
/// [`er_pool::ScratchSlot`], so nothing is allocated or re-packed per
/// band at steady state (the PR-1 decomposition paid both per product).
/// Per-element accumulation order is unchanged by the strip split, so
/// results stay bit-identical to [`matmul_packed`] at any thread count.
pub fn matmul_pooled_into(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    pool: &WorkerPool,
    scratch: &mut PackScratch,
) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    debug_validate("matmul_pooled (lhs)", || a.validate());
    debug_validate("matmul_pooled (rhs)", || b.validate());
    let (m, n) = (a.rows(), b.cols());
    let k = a.cols();
    let work = m.saturating_mul(n).saturating_mul(k);
    if !pool.dispatch(work).is_parallel() {
        matmul_packed_into(a, b, out, scratch);
        return;
    }
    let _span = er_obs::span("matmul");
    er_obs::counter_add("matmul_pooled_total", 1);
    out.reset(m, n);
    if m == 0 || n == 0 {
        return;
    }
    // MR-aligned strips, ~2 per worker for balance: strip boundaries on
    // MR multiples mean no A tile is packed by two jobs.
    let strip_rows = m.div_ceil(pool.threads() * 2).div_ceil(pack::MR).max(1) * pack::MR;
    let out_data = out.data_mut();
    for kk in (0..k).step_by(pack::KC) {
        let kc = pack::KC.min(k - kk);
        pack::pack_b(b, kk, kc, &mut scratch.b_pack);
        let b_pack: &[f64] = &scratch.b_pack;
        let strip_a = &scratch.strip_a;
        pool.scope(|s| {
            for (t, band) in out_data.chunks_mut(strip_rows * n).enumerate() {
                let row_start = t * strip_rows;
                let row_end = (row_start + strip_rows).min(m);
                s.submit(move || {
                    let mut a_buf = strip_a.checkout();
                    pack::matmul_rows_prepacked_b(
                        a, b_pack, n, kk, kc, band, row_start, row_end, &mut a_buf,
                    );
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::KC;

    fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Cheap LCG so tests need no RNG dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let expect = Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]);
        assert_eq!(matmul_naive(&a, &b), expect);
        assert_eq!(matmul_blocked(&a, &b), expect);
        assert_eq!(matmul_packed(&a, &b), expect);
        assert_eq!(matmul_threaded(&a, &b, 4), expect);
    }

    #[test]
    fn packed_is_bit_identical_to_naive_and_blocked_single_panel() {
        // k ≤ KC: one packed panel, so per-element accumulation order is
        // identical across all three kernels (see crate::pack docs).
        let n = 97;
        assert!(n <= KC);
        let a = deterministic(n, n, 11);
        let b = deterministic(n, n, 12);
        let packed = matmul_packed(&a, &b);
        assert_eq!(packed, matmul_naive(&a, &b));
        assert_eq!(packed, matmul_blocked(&a, &b));
    }

    #[test]
    fn packed_into_reuses_buffers_across_shapes() {
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = PackScratch::default();
        for (m, k, n) in [(33, 20, 11), (5, 5, 5), (20, 40, 20)] {
            let a = deterministic(m, k, 20);
            let b = deterministic(k, n, 21);
            matmul_packed_into(&a, &b, &mut out, &mut scratch);
            assert_eq!(out, matmul_naive(&a, &b));
        }
    }

    #[test]
    fn rectangular_shapes() {
        let a = deterministic(3, 7, 1);
        let b = deterministic(7, 5, 2);
        let naive = matmul_naive(&a, &b);
        assert!(matmul_blocked(&a, &b).approx_eq(&naive, 1e-12));
        assert_eq!(naive.rows(), 3);
        assert_eq!(naive.cols(), 5);
    }

    #[test]
    fn blocked_matches_naive_past_block_boundary() {
        let n = BLOCK + 17;
        let a = deterministic(n, n, 3);
        let b = deterministic(n, n, 4);
        let naive = matmul_naive(&a, &b);
        assert!(matmul_blocked(&a, &b).approx_eq(&naive, 1e-9));
    }

    #[test]
    fn threaded_is_bit_identical_to_packed() {
        let n = 97;
        let a = deterministic(n, n, 5);
        let b = deterministic(n, n, 6);
        let single = matmul_packed(&a, &b);
        for threads in [2, 3, 8] {
            assert_eq!(
                matmul_threaded(&a, &b, threads),
                single,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pooled_is_bit_identical_to_packed() {
        let n = 97;
        let a = deterministic(n, n, 5);
        let b = deterministic(n, n, 6);
        let single = matmul_packed(&a, &b);
        for threads in [1, 2, 3, 8] {
            let pool = WorkerPool::new(threads);
            assert_eq!(matmul_pooled(&a, &b, &pool), single, "threads={threads}");
        }
    }

    #[test]
    fn deep_k_threaded_and_pooled_match_serial_packed() {
        // k > KC exercises the multi-panel write-back; band splits must
        // still be bit-identical to the serial packed kernel.
        let (m, k, n) = (70, 2 * KC + 3, 40);
        let a = deterministic(m, k, 30);
        let b = deterministic(k, n, 31);
        let single = matmul_packed(&a, &b);
        assert_eq!(matmul_threaded(&a, &b, 8), single);
        let pool = WorkerPool::new(4);
        assert_eq!(matmul_pooled(&a, &b, &pool), single);
        assert!(single.approx_eq(&matmul_naive(&a, &b), 1e-9));
    }

    #[test]
    fn pooled_handles_reused_pool_across_products() {
        let pool = WorkerPool::new(4);
        for seed in 0..6 {
            let a = deterministic(70 + seed as usize, 80, seed);
            let b = deterministic(80, 90, seed + 100);
            assert!(matmul_pooled(&a, &b, &pool).approx_eq(&matmul_naive(&a, &b), 1e-9));
        }
    }

    #[test]
    fn zero_and_identity() {
        let a = deterministic(10, 10, 7);
        let z = Matrix::zeros(10, 10);
        assert!(matmul_blocked(&a, &z).approx_eq(&z, 0.0));
        assert!(matmul_blocked(&a, &Matrix::identity(10)).approx_eq(&a, 1e-12));
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[3.0]]);
        let b = Matrix::from_rows(&[&[4.0]]);
        assert_eq!(matmul_blocked(&a, &b).get(0, 0), 12.0);
    }

    #[test]
    fn empty_dims() {
        let a = Matrix::zeros(0, 0);
        let out = matmul_blocked(&a, &a);
        assert_eq!(out.rows(), 0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims() {
        matmul_blocked(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3));
    }
}
