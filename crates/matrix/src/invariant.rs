//! Debug-gated structural invariant validation.
//!
//! Every core structure exposes a `validate()` returning the first
//! violated invariant, and construction/kernel boundaries call it through
//! [`debug_validate`] — a `debug_assert!`-style hook that compiles to
//! nothing in release builds. The point is to catch a corrupted structure
//! at the boundary where it was built, not ten kernels later as a wrong
//! number or an index panic.

use std::fmt;

/// A violated structural invariant, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The structure (and usually the row/element) that failed.
    pub structure: &'static str,
    /// What was violated, with the offending values.
    pub detail: String,
}

impl InvariantViolation {
    pub(crate) fn new(structure: &'static str, detail: impl Into<String>) -> Self {
        Self {
            structure,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.structure, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

/// Runs `validate` in debug builds, panicking with the violation and
/// `context` (the boundary being checked). Compiles to nothing with
/// `debug_assertions` off, so validators may be `O(nnz)` without
/// touching release performance.
#[inline]
pub fn debug_validate<E: fmt::Display>(context: &str, validate: impl FnOnce() -> Result<(), E>) {
    #[cfg(debug_assertions)]
    if let Err(e) = validate() {
        panic!("invariant violation at {context}: {e}");
    }
    #[cfg(not(debug_assertions))]
    let _ = (context, validate);
}
