//! Row-major dense matrix.

use crate::invariant::InvariantViolation;
use crate::matmul::matmul_packed;

/// A row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds from row slices (all must share one length).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Takes ownership of a row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Releases the underlying row-major buffer (capacity preserved),
    /// for recycling through a [`crate::MatrixArena`].
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reshapes in place to a zeroed `rows × cols` matrix, reusing the
    /// existing buffer. Allocation-free whenever the buffer's capacity
    /// already covers `rows × cols` — the property every `*_into` kernel
    /// relies on for zero steady-state allocations.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Matrix product using the packed register-tiled kernel.
    pub fn matmul(&self, rhs: &Self) -> Self {
        matmul_packed(self, rhs)
    }

    /// Element-wise (Hadamard) product — the `⊙` of the CliqueRank
    /// recurrence `M^k = Mt × (M^{k−1} ⊙ Mn)`.
    pub fn hadamard(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Hadamard product written into `out` (reshaped in place), so the
    /// recurrence's masking step allocates nothing once `out`'s buffer
    /// has reached capacity.
    pub fn hadamard_into(&self, rhs: &Self, out: &mut Self) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard shape mismatch"
        );
        out.reset(self.rows, self.cols);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a * b;
        }
    }

    /// In-place Hadamard product (avoids the allocation in the hot loop).
    pub fn hadamard_assign(&mut self, rhs: &Self) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "hadamard shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= *b;
        }
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise sum.
    pub fn add_assign(&mut self, rhs: &Self) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }

    /// Scales every element.
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Largest absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Checks the structural invariants of the dense form: the buffer
    /// holds exactly `rows × cols` elements and every element is finite.
    /// Kernel boundaries (`matmul_*`) run this under `debug_assertions` —
    /// a NaN entering a matrix product silently poisons every downstream
    /// similarity score, so it is caught at the door instead.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        if self.data.len() != self.rows * self.cols {
            return Err(InvariantViolation::new(
                "Matrix",
                format!(
                    "buffer holds {} elements for a {}x{} matrix",
                    self.data.len(),
                    self.rows,
                    self.cols
                ),
            ));
        }
        if let Some((i, &v)) = self.data.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(InvariantViolation::new(
                "Matrix",
                format!(
                    "element ({}, {}) is {v} (want finite)",
                    i / self.cols.max(1),
                    i % self.cols.max(1)
                ),
            ));
        }
        Ok(())
    }

    /// Checks that every row is a probability distribution: entries in
    /// `[0, 1]` and each row summing to 1 within `tol`, or to exactly 0
    /// (a dangling node's row). This is the contract of the CliqueRank
    /// transition matrix `Mt` entering the power recurrence.
    pub fn validate_row_stochastic(&self, tol: f64) -> Result<(), InvariantViolation> {
        self.validate()?;
        for r in 0..self.rows {
            let row = self.row(r);
            if let Some(&v) = row.iter().find(|v| !(0.0..=1.0 + tol).contains(*v)) {
                return Err(InvariantViolation::new(
                    "Matrix",
                    format!("row {r} has transition probability {v} outside [0, 1]"),
                ));
            }
            let sum: f64 = row.iter().sum();
            if sum != 0.0 && (sum - 1.0).abs() > tol {
                return Err(InvariantViolation::new(
                    "Matrix",
                    format!("row {r} sums to {sum} (want 1 ± {tol} or exactly 0)"),
                ));
            }
        }
        Ok(())
    }

    /// True when all elements differ by at most `tol`.
    pub fn approx_eq(&self, rhs: &Self, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 7 + c) as f64);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn hadamard_matches_elementwise() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 0.5]]);
        let h = a.hadamard(&b);
        assert_eq!(h, Matrix::from_rows(&[&[5.0, 12.0], &[21.0, 2.0]]));
        let mut c = a.clone();
        c.hadamard_assign(&b);
        assert_eq!(c, h);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, -1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 3.0]]);
        let mut s = a.add(&b);
        assert_eq!(s, Matrix::from_rows(&[&[3.0, 2.0]]));
        s.scale(2.0);
        assert_eq!(s, Matrix::from_rows(&[&[6.0, 4.0]]));
        s.add_assign(&a);
        assert_eq!(s, Matrix::from_rows(&[&[7.0, 3.0]]));
    }

    #[test]
    fn max_abs_and_approx_eq() {
        let a = Matrix::from_rows(&[&[1.0, -3.0], &[2.0, 0.0]]);
        assert_eq!(a.max_abs(), 3.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
    }

    #[test]
    fn reset_reuses_capacity_and_zeroes() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let cap = m.data.capacity();
        m.reset(1, 3);
        assert_eq!((m.rows(), m.cols()), (1, 3));
        assert_eq!(m.data(), &[0.0, 0.0, 0.0]);
        assert_eq!(m.data.capacity(), cap);
        assert_eq!(m.into_vec().capacity(), cap);
    }

    #[test]
    fn hadamard_into_matches_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 0.5]]);
        let mut out = Matrix::zeros(9, 9); // wrong shape on purpose
        a.hadamard_into(&b, &mut out);
        assert_eq!(out, a.hadamard(&b));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn hadamard_rejects_mismatch() {
        Matrix::zeros(2, 2).hadamard(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }
}
