//! Packed, register-tiled GEMM microkernel.
//!
//! The CliqueRank recurrence performs `S − 1` dense `n × n` products per
//! connected component per fusion round, so this file is the hottest code
//! in the workspace. The kernel follows the classical BLIS decomposition,
//! written entirely in safe Rust so the workspace lint wall
//! (`#![deny(unsafe_code)]`) holds:
//!
//! 1. The `k` dimension is split into depth-[`KC`] panels.
//! 2. Per panel, `B` is **packed** into contiguous `KC × NR` column
//!    panels (`k`-major: the `NR` values of one `k` sit next to each
//!    other) and each `MR`-row strip of `A` is packed `k`-major as well
//!    (`MR` values per `k`).
//! 3. An [`MR`]` × `[`NR`] **register-tile microkernel** walks both packed
//!    buffers with unit stride, accumulating into a fixed-size
//!    `[[f64; NR]; MR]` array. The fixed shapes let rustc/LLVM keep the
//!    accumulator in vector registers and autovectorize the fma-shaped
//!    inner loop — no intrinsics, no `unsafe`.
//!
//! # Tail policy
//!
//! Ragged edges are handled by **zero-padding the packed buffers** to
//! full `MR`/`NR` tiles: the microkernel always runs the full-tile shape
//! (keeping the code branch-free and vectorizable) and the write-back
//! adds only the `mr_eff × nr_eff` valid region. Padding rows/columns
//! accumulate into lanes that are simply never written back, and padding
//! never perturbs valid lanes because every `acc[i][j]` is its own
//! scalar.
//!
//! # Determinism contract
//!
//! Each output element accumulates its `k` products in strictly
//! ascending `k` order within a panel, and panels are visited in
//! ascending order, so for `k ≤ KC` the result is **bit-identical** to
//! the textbook triple loop ([`crate::matmul_naive`]). Accumulators are
//! per-row independent (no cross-row floating-point operation), so
//! splitting the row range across threads at *any* boundary — the
//! decomposition `matmul_threaded` / `matmul_pooled` use — reproduces
//! the serial result bit for bit at every thread count.

use er_pool::ScratchSlot;

use crate::dense::Matrix;

/// Microkernel tile height (rows of `A` per register tile). With
/// [`NR`]` = 4`, an 8 × 4 `f64` accumulator is eight 256-bit vectors —
/// half the AVX2 register file, leaving room for the `A` broadcasts and
/// `B` loads. On pre-AVX targets the same accumulator would be sixteen
/// 128-bit vectors — the *entire* xmm file, spilling every iteration —
/// so the tile height halves to keep the accumulator register-resident.
/// The constant only shapes the blocking; results are bit-identical
/// either way (per-element ascending-`k` accumulation).
pub const MR: usize = if cfg!(target_feature = "avx") { 8 } else { 4 };

/// Microkernel tile width (columns of `B` per register tile): one
/// 256-bit `f64` vector, or one 512-bit vector where AVX-512 is
/// available (the 8 × 8 accumulator is then eight zmm registers of 32).
pub const NR: usize = if cfg!(target_feature = "avx512f") {
    8
} else {
    4
};

/// Depth of one packed `k` panel. `KC × (MR + NR)` doubles ≈ 24 KiB of
/// packed operands per strip — comfortably L1-resident.
pub const KC: usize = 256;

/// Reusable packing buffers lent to the packed kernels.
///
/// The buffers grow to the high-water mark of the products they serve
/// and are then reused allocation-free: `clear()` + `resize()` on a
/// `Vec` whose capacity already suffices never touches the allocator.
/// One scratch must not be shared across concurrent products; the
/// threaded/pooled kernels give each row band its own.
#[derive(Debug, Default)]
pub struct PackScratch {
    /// Packed `A` strip: `KC × MR`, `k`-major.
    a_pack: Vec<f64>,
    /// Packed `B` panel block: `ceil(n / NR)` panels of `KC × NR`.
    pub(crate) b_pack: Vec<f64>,
    /// Per-job `A`-strip buffers for the pooled front end: `B` is packed
    /// once into `b_pack` on the caller thread and shared read-only,
    /// while each MR-strip job checks out its own `a_pack`-shaped buffer
    /// here. Buffers persist across products, so the pooled kernel is
    /// allocation-free at steady state like the serial one.
    pub(crate) strip_a: ScratchSlot<Vec<f64>>,
}

/// Packs `b[kk..kk+kc, :]` into `NR`-wide column panels, `k`-major,
/// zero-padding the last panel to full width.
pub(crate) fn pack_b(b: &Matrix, kk: usize, kc: usize, buf: &mut Vec<f64>) {
    let n = b.cols();
    let panels = n.div_ceil(NR);
    buf.clear();
    buf.resize(panels * kc * NR, 0.0);
    for (pj, dst_panel) in buf.chunks_exact_mut(kc * NR).enumerate() {
        let j0 = pj * NR;
        let nr_eff = NR.min(n - j0);
        for (k, dst) in dst_panel.chunks_exact_mut(NR).enumerate() {
            let src = &b.row(kk + k)[j0..j0 + nr_eff];
            dst[..nr_eff].copy_from_slice(src);
        }
    }
}

/// Packs the `mr_eff ≤ MR` rows `a[i0.., kk..kk+kc]` `k`-major,
/// zero-padding missing rows.
fn pack_a(a: &Matrix, i0: usize, mr_eff: usize, kk: usize, kc: usize, buf: &mut Vec<f64>) {
    buf.clear();
    buf.resize(kc * MR, 0.0);
    for i in 0..mr_eff {
        let row = &a.row(i0 + i)[kk..kk + kc];
        for (k, &v) in row.iter().enumerate() {
            buf[k * MR + i] = v;
        }
    }
}

/// The register-tile kernel: `acc += a_packᵀ × b_panel` over one `k`
/// panel. Both inputs are `k`-major and exactly `kc × MR` / `kc × NR`
/// long, so the zipped `chunks_exact` walk is branch-free and the fixed
/// `MR × NR` loop nest autovectorizes.
// er-lint: zero-alloc
#[inline]
fn microkernel(a_pack: &[f64], b_panel: &[f64], acc: &mut [[f64; NR]; MR]) {
    for (ak, bk) in a_pack.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let ak: &[f64; MR] = ak.try_into().expect("packed A chunk is MR wide"); // er-lint: allow(panic) -- chunks_exact(MR) guarantees the width
        let bk: &[f64; NR] = bk.try_into().expect("packed B chunk is NR wide"); // er-lint: allow(panic) -- chunks_exact(NR) guarantees the width
        for i in 0..MR {
            let ai = ak[i];
            for j in 0..NR {
                acc[i][j] += ai * bk[j];
            }
        }
    }
}

/// Multiplies rows `row_start..row_end` of `a` by `b` into `out_rows`
/// (a zeroed row-major buffer of `(row_end − row_start) × b.cols()`),
/// using `scratch` for the packed operands. This is the band kernel the
/// serial, threaded, and pooled front ends all share; per-row results
/// are independent of the band split (see the module docs), so every
/// decomposition is bit-identical.
pub fn matmul_packed_rows(
    a: &Matrix,
    b: &Matrix,
    out_rows: &mut [f64],
    row_start: usize,
    row_end: usize,
    scratch: &mut PackScratch,
) {
    let k = a.cols();
    let n = b.cols();
    debug_assert_eq!(out_rows.len(), (row_end - row_start) * n);
    if n == 0 {
        return;
    }
    for kk in (0..k).step_by(KC) {
        let kc = KC.min(k - kk);
        pack_b(b, kk, kc, &mut scratch.b_pack);
        matmul_rows_prepacked_b(
            a,
            &scratch.b_pack,
            n,
            kk,
            kc,
            out_rows,
            row_start,
            row_end,
            &mut scratch.a_pack,
        );
    }
}

/// Accumulates rows `row_start..row_end` of `a[:, kk..kk+kc] × b` into
/// `out_rows`, with `b`'s `kk` panel already packed into `b_pack` (as
/// produced by [`pack_b`]). This is the per-job strip kernel of the
/// pooled front end: `b_pack` is shared read-only across jobs, `a_buf`
/// is the job's private packing buffer, and every output word belongs to
/// exactly one strip — accumulation order per element is unchanged, so
/// any strip decomposition is bit-identical to the serial kernel.
#[allow(clippy::too_many_arguments)]
pub(crate) fn matmul_rows_prepacked_b(
    a: &Matrix,
    b_pack: &[f64],
    n: usize,
    kk: usize,
    kc: usize,
    out_rows: &mut [f64],
    row_start: usize,
    row_end: usize,
    a_buf: &mut Vec<f64>,
) {
    let panels = n.div_ceil(NR);
    debug_assert_eq!(b_pack.len(), panels * kc * NR);
    let mut i0 = row_start;
    while i0 < row_end {
        let mr_eff = MR.min(row_end - i0);
        pack_a(a, i0, mr_eff, kk, kc, a_buf);
        for pj in 0..panels {
            let j0 = pj * NR;
            let nr_eff = NR.min(n - j0);
            let b_panel = &b_pack[pj * kc * NR..(pj + 1) * kc * NR];
            let mut acc = [[0.0f64; NR]; MR];
            microkernel(a_buf, b_panel, &mut acc);
            for (i, acc_row) in acc.iter().enumerate().take(mr_eff) {
                let base = (i0 - row_start + i) * n + j0;
                let out = &mut out_rows[base..base + nr_eff];
                for (o, &v) in out.iter_mut().zip(acc_row) {
                    *o += v;
                }
            }
        }
        i0 += mr_eff;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul_naive;

    fn deterministic(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        })
    }

    #[test]
    fn single_panel_is_bit_identical_to_naive() {
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (MR, KC, NR), (65, 64, 63)] {
            let a = deterministic(m, k, 1);
            let b = deterministic(k, n, 2);
            let mut out = vec![0.0; m * n];
            let mut scratch = PackScratch::default();
            matmul_packed_rows(&a, &b, &mut out, 0, m, &mut scratch);
            let naive = matmul_naive(&a, &b);
            assert_eq!(out, naive.data(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn band_split_matches_full_run() {
        let (m, k, n) = (37, 90, 29);
        let a = deterministic(m, k, 3);
        let b = deterministic(k, n, 4);
        let mut full = vec![0.0; m * n];
        let mut scratch = PackScratch::default();
        matmul_packed_rows(&a, &b, &mut full, 0, m, &mut scratch);
        // Split at a boundary that is deliberately not MR-aligned.
        let split = 13;
        let mut banded = vec![0.0; m * n];
        let (lo, hi) = banded.split_at_mut(split * n);
        matmul_packed_rows(&a, &b, lo, 0, split, &mut scratch);
        matmul_packed_rows(&a, &b, hi, split, m, &mut scratch);
        assert_eq!(full, banded);
    }

    #[test]
    fn multi_panel_k_matches_naive_closely() {
        let (m, k, n) = (10, 2 * KC + 7, 9);
        let a = deterministic(m, k, 5);
        let b = deterministic(k, n, 6);
        let mut out = vec![0.0; m * n];
        let mut scratch = PackScratch::default();
        matmul_packed_rows(&a, &b, &mut out, 0, m, &mut scratch);
        let naive = matmul_naive(&a, &b);
        for (got, want) in out.iter().zip(naive.data()) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn scratch_reuse_across_shapes() {
        let mut scratch = PackScratch::default();
        for (m, k, n) in [(20, 30, 40), (3, 3, 3), (40, 20, 10)] {
            let a = deterministic(m, k, 7);
            let b = deterministic(k, n, 8);
            let mut out = vec![0.0; m * n];
            matmul_packed_rows(&a, &b, &mut out, 0, m, &mut scratch);
            assert_eq!(out, matmul_naive(&a, &b).data());
        }
    }
}
