//! Property tests for the structural invariant validators: every
//! constructed matrix passes `validate()`, and targeted corruptions
//! (through the non-validating `from_raw_parts` seam) are caught.

use er_matrix::{CsrMatrix, Matrix};
use proptest::prelude::*;

/// Random sparse occupancy with positive finite values.
fn csr(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::btree_set((0..rows as u32, 0..cols as u32), 0..max_nnz).prop_map(
        move |set| {
            let triplets: Vec<(u32, u32, f64)> = set
                .into_iter()
                .enumerate()
                .map(|(i, (r, c))| (r, c, 0.1 + (i % 7) as f64 * 0.3))
                .collect();
            CsrMatrix::from_triplets(rows, cols, &triplets)
        },
    )
}

/// Pulls the CSR arrays back out of a valid matrix so mutations can be
/// reassembled through `from_raw_parts`.
fn raw_parts(m: &CsrMatrix) -> (Vec<usize>, Vec<u32>, Vec<f64>) {
    let mut indptr = vec![0usize];
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..m.rows() {
        let (cols, vals) = m.row(r);
        indices.extend_from_slice(cols);
        values.extend_from_slice(vals);
        indptr.push(indices.len());
    }
    (indptr, indices, values)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn constructed_csr_validates(m in csr(9, 7, 30)) {
        prop_assert!(m.validate().is_ok());
    }

    #[test]
    fn round_tripped_raw_parts_validate(m in csr(9, 7, 30)) {
        let (indptr, indices, values) = raw_parts(&m);
        let rebuilt = CsrMatrix::from_raw_parts(m.rows(), m.cols(), indptr, indices, values);
        prop_assert!(rebuilt.validate().is_ok());
    }

    #[test]
    fn swapped_column_indices_fail(m in csr(9, 7, 30)) {
        // Need one row with two entries to unsort.
        let Some(victim) = (0..m.rows()).find(|&r| m.row(r).0.len() >= 2) else {
            return;
        };
        let start: usize = (0..victim).map(|r| m.row(r).0.len()).sum();
        let (indptr, mut indices, values) = raw_parts(&m);
        indices.swap(start, start + 1);
        let bad = CsrMatrix::from_raw_parts(m.rows(), m.cols(), indptr, indices, values);
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn injected_nan_fails(m in csr(9, 7, 30), pick in 0usize..1024) {
        if m.nnz() == 0 {
            return;
        }
        let (indptr, indices, mut values) = raw_parts(&m);
        let i = pick % values.len();
        values[i] = f64::NAN;
        let bad = CsrMatrix::from_raw_parts(m.rows(), m.cols(), indptr, indices, values);
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn out_of_bounds_column_fails(m in csr(9, 7, 30)) {
        // Push the last entry of some non-empty row past `cols`.
        let Some(victim) = (0..m.rows()).find(|&r| !m.row(r).0.is_empty()) else {
            return;
        };
        let end: usize = (0..=victim).map(|r| m.row(r).0.len()).sum();
        let (indptr, mut indices, values) = raw_parts(&m);
        indices[end - 1] = m.cols() as u32;
        let bad = CsrMatrix::from_raw_parts(m.rows(), m.cols(), indptr, indices, values);
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn inconsistent_indptr_fails(m in csr(9, 7, 30)) {
        let (mut indptr, indices, values) = raw_parts(&m);
        *indptr.last_mut().unwrap() += 1;
        let bad = CsrMatrix::from_raw_parts(m.rows(), m.cols(), indptr, indices, values);
        prop_assert!(bad.validate().is_err());
    }

    #[test]
    fn normalized_rows_are_row_stochastic(occupancy in proptest::collection::vec(
        proptest::collection::btree_set(0u32..8, 0..6), 1..8)
    ) {
        let triplets: Vec<(u32, u32, f64)> = occupancy
            .iter()
            .enumerate()
            .flat_map(|(r, cols)| {
                let w = 1.0 / cols.len().max(1) as f64;
                cols.iter().map(move |&c| (r as u32, c, w)).collect::<Vec<_>>()
            })
            .collect();
        let m = CsrMatrix::from_triplets(occupancy.len(), 8, &triplets);
        prop_assert!(m.validate_row_stochastic(1e-9).is_ok());
    }

    #[test]
    fn perturbed_row_sum_is_not_row_stochastic(occupancy in proptest::collection::vec(
        proptest::collection::btree_set(0u32..8, 0..6), 1..8)
    ) {
        if occupancy.iter().all(std::collections::BTreeSet::is_empty) {
            return;
        }
        let triplets: Vec<(u32, u32, f64)> = occupancy
            .iter()
            .enumerate()
            .flat_map(|(r, cols)| {
                let w = 1.0 / cols.len().max(1) as f64;
                cols.iter().map(move |&c| (r as u32, c, w)).collect::<Vec<_>>()
            })
            .collect();
        let m = CsrMatrix::from_triplets(occupancy.len(), 8, &triplets);
        let (indptr, indices, mut values) = raw_parts(&m);
        values[0] *= 1.5;
        let bad = CsrMatrix::from_raw_parts(m.rows(), m.cols(), indptr, indices, values);
        prop_assert!(bad.validate_row_stochastic(1e-9).is_err());
    }

    #[test]
    fn dense_finite_validates(a in proptest::collection::vec(-2.0f64..2.0, 6 * 5)) {
        let m = Matrix::from_vec(6, 5, a);
        prop_assert!(m.validate().is_ok());
    }

    #[test]
    fn dense_nan_fails(a in proptest::collection::vec(-2.0f64..2.0, 6 * 5),
                       pick in 0usize..1024) {
        let mut m = Matrix::from_vec(6, 5, a);
        let i = pick % m.data().len();
        m.data_mut()[i] = f64::NAN;
        prop_assert!(m.validate().is_err());
    }

    #[test]
    fn dense_normalized_rows_are_row_stochastic(a in proptest::collection::vec(0.01f64..2.0, 6 * 5)) {
        let mut m = Matrix::from_vec(6, 5, a);
        for r in 0..6 {
            let sum: f64 = (0..5).map(|c| m.get(r, c)).sum();
            for c in 0..5 {
                let v = m.get(r, c) / sum;
                m.set(r, c, v);
            }
        }
        prop_assert!(m.validate_row_stochastic(1e-9).is_ok());
        m.set(0, 0, m.get(0, 0) + 0.1);
        prop_assert!(m.validate_row_stochastic(1e-9).is_err());
    }
}
