//! Property tests for the packed register-tiled matmul: ragged shapes
//! straddling the MR/NR tile edges and the KC depth panel must produce
//! *bit-identical* results to the naive i-k-j reference (both accumulate
//! per output element in ascending-k order, so for k ≤ KC there is no
//! rounding slack at all), and the threaded/pooled row-band splits must be
//! bit-identical to the serial packed kernel at every thread count.

use er_matrix::{
    matmul_naive, matmul_packed, matmul_packed_into, matmul_pooled, matmul_threaded, Matrix,
    PackScratch, KC, MR, NR,
};
use er_pool::WorkerPool;
use proptest::prelude::*;

/// Dimensions that exercise every tail case: degenerate sizes, the NR
/// panel edges, the MR strip edges, and a cache-block boundary.
const DIMS: [usize; 13] = [
    1,
    2,
    3,
    4,
    5,
    NR - 1,
    NR + 1,
    MR - 1,
    MR,
    MR + 1,
    63,
    64,
    65,
];

fn ragged_dim() -> impl Strategy<Value = usize> {
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

fn matrix_of(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn ragged_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (ragged_dim(), ragged_dim(), ragged_dim())
        .prop_flat_map(|(m, k, n)| (matrix_of(m, k), matrix_of(k, n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packed_bit_identical_to_naive_on_ragged_shapes((a, b) in ragged_pair()) {
        // All sampled k are ≤ KC (single depth panel), so the packed
        // kernel's per-element sum runs in the same ascending-k order as
        // the naive kernel: results must match to the last bit.
        prop_assert!(a.cols() <= KC);
        let packed = matmul_packed(&a, &b);
        let naive = matmul_naive(&a, &b);
        prop_assert_eq!(packed.data(), naive.data());
    }

    #[test]
    fn packed_into_matches_packed_with_dirty_scratch(
        (a, b) in ragged_pair(),
        (a2, b2) in ragged_pair(),
    ) {
        // Scratch reuse across unrelated shapes must not leak state.
        let mut scratch = PackScratch::default();
        let mut out = Matrix::zeros(1, 1);
        matmul_packed_into(&a2, &b2, &mut out, &mut scratch);
        matmul_packed_into(&a, &b, &mut out, &mut scratch);
        prop_assert_eq!(out.data(), matmul_packed(&a, &b).data());
        prop_assert_eq!(out.rows(), a.rows());
        prop_assert_eq!(out.cols(), b.cols());
    }

    #[test]
    fn threaded_and_pooled_bit_identical_at_any_thread_count((a, b) in ragged_pair()) {
        let serial = matmul_packed(&a, &b);
        for threads in [1usize, 2, 8] {
            let t = matmul_threaded(&a, &b, threads);
            prop_assert_eq!(t.data(), serial.data(), "threads={}", threads);
            let pool = WorkerPool::new(threads);
            let p = matmul_pooled(&a, &b, &pool);
            prop_assert_eq!(p.data(), serial.data(), "pooled threads={}", threads);
        }
    }

    #[test]
    fn deep_k_row_bands_match_serial(
        m in ragged_dim(),
        n in ragged_dim(),
        a_seed in proptest::collection::vec(-1.0f64..1.0, 16),
    ) {
        // k > KC engages the multi-panel accumulate path; row-band splits
        // must still be bit-identical to the serial packed result because
        // each output row is computed independently.
        let k = KC + 7;
        let a = Matrix::from_fn(m, k, |i, j| a_seed[(i * 31 + j * 17) % 16] * 0.5);
        let b = Matrix::from_fn(k, n, |i, j| a_seed[(i * 13 + j * 29) % 16] * 0.25);
        let serial = matmul_packed(&a, &b);
        for threads in [2usize, 8] {
            let t = matmul_threaded(&a, &b, threads);
            prop_assert_eq!(t.data(), serial.data(), "threads={}", threads);
        }
    }
}
