//! Property tests for the matrix kernels: algebraic identities checked
//! against the naive reference implementation.

use er_matrix::{matmul_blocked, matmul_naive, matmul_threaded, CsrMatrix, Matrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-2.0f64..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

fn square(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_equals_naive(a in matrix(5, 9), b in matrix(9, 4)) {
        let fast = matmul_blocked(&a, &b);
        let slow = matmul_naive(&a, &b);
        prop_assert!(fast.approx_eq(&slow, 1e-10));
    }

    #[test]
    fn threaded_equals_blocked(a in square(17), b in square(17), threads in 1usize..5) {
        let t = matmul_threaded(&a, &b, threads);
        let s = matmul_blocked(&a, &b);
        prop_assert!(t.approx_eq(&s, 1e-12));
    }

    #[test]
    fn matmul_associative(a in square(6), b in square(6), c in square(6)) {
        let left = matmul_blocked(&matmul_blocked(&a, &b), &c);
        let right = matmul_blocked(&a, &matmul_blocked(&b, &c));
        prop_assert!(left.approx_eq(&right, 1e-8));
    }

    #[test]
    fn matmul_distributes_over_add(a in square(6), b in square(6), c in square(6)) {
        let left = matmul_blocked(&a, &b.add(&c));
        let right = matmul_blocked(&a, &b).add(&matmul_blocked(&a, &c));
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn transpose_of_product(a in matrix(4, 7), b in matrix(7, 5)) {
        let lhs = matmul_blocked(&a, &b).transpose();
        let rhs = matmul_blocked(&b.transpose(), &a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn identity_is_neutral(a in square(8)) {
        let i = Matrix::identity(8);
        prop_assert!(matmul_blocked(&a, &i).approx_eq(&a, 1e-12));
        prop_assert!(matmul_blocked(&i, &a).approx_eq(&a, 1e-12));
    }

    #[test]
    fn hadamard_commutes(a in square(7), b in square(7)) {
        prop_assert!(a.hadamard(&b).approx_eq(&b.hadamard(&a), 1e-12));
    }

    #[test]
    fn sparse_round_trip(a in square(8)) {
        // Sparsify: zero out small entries to get genuine sparsity.
        let mut m = a.clone();
        for v in m.data_mut() {
            if v.abs() < 1.0 {
                *v = 0.0;
            }
        }
        let s = CsrMatrix::from_dense(&m);
        prop_assert!(s.to_dense().approx_eq(&m, 0.0));
        prop_assert_eq!(s.nnz(), m.data().iter().filter(|v| **v != 0.0).count());
    }

    #[test]
    fn sparse_times_dense_equals_dense_product(a in square(8), b in square(8)) {
        let mut m = a.clone();
        for v in m.data_mut() {
            if v.abs() < 1.0 {
                *v = 0.0;
            }
        }
        let s = CsrMatrix::from_dense(&m);
        let sparse_prod = s.matmul_dense(&b);
        let dense_prod = matmul_naive(&m, &b);
        prop_assert!(sparse_prod.approx_eq(&dense_prod, 1e-10));
    }

    #[test]
    fn matvec_is_single_column_matmul(a in square(8), x in proptest::collection::vec(-2.0f64..2.0, 8)) {
        let mut m = a.clone();
        for v in m.data_mut() {
            if v.abs() < 0.8 {
                *v = 0.0;
            }
        }
        let s = CsrMatrix::from_dense(&m);
        let y = s.matvec(&x);
        let col = Matrix::from_vec(8, 1, x.clone());
        let y2 = matmul_naive(&m, &col);
        for (i, &v) in y.iter().enumerate() {
            prop_assert!((v - y2.get(i, 0)).abs() < 1e-10);
        }
    }
}
