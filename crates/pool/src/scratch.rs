//! Per-worker scratch without worker identity.
//!
//! The pool's workers are anonymous — jobs don't know which thread runs
//! them — so "per-worker scratch" is modeled as a checkout stack: a job
//! [`ScratchSlot::checkout`]s a scratch value on entry and the guard
//! returns it on drop. Since at most `threads` jobs run concurrently, at
//! most `threads` values are ever live, and after a warm-up pass every
//! checkout is served from the stack without constructing (or, for
//! buffer-holding scratch types, allocating) anything new. A worker that
//! processes a stream of CliqueRank components therefore reuses the same
//! grown buffers across components — the size-bucketed reuse the
//! zero-allocation recurrence relies on.

use crate::sync::Mutex;

/// A checkout stack of reusable scratch values.
///
/// `T::default()` must be cheap (empty buffers); values grow lazily to
/// their high-water mark in use and keep that capacity across checkouts.
#[derive(Debug, Default)]
pub struct ScratchSlot<T> {
    free: Mutex<Vec<T>>,
}

impl<T: Default> ScratchSlot<T> {
    /// An empty slot; values are constructed on first checkout.
    pub fn new() -> Self {
        Self {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Checks out a scratch value (reusing a returned one when
    /// available). The guard derefs to `T` and returns the value to the
    /// slot when dropped.
    pub fn checkout(&self) -> ScratchGuard<'_, T> {
        let value = self.free.lock().pop().unwrap_or_default();
        ScratchGuard {
            slot: self,
            value: Some(value),
        }
    }

    /// Number of values currently parked in the slot (none checked out
    /// ⇒ the total ever constructed).
    pub fn parked(&self) -> usize {
        self.free.lock().len()
    }
}

/// Owns a checked-out scratch value; hands it back on drop.
#[derive(Debug)]
pub struct ScratchGuard<'a, T: Default> {
    slot: &'a ScratchSlot<T>,
    value: Option<T>,
}

impl<T: Default> std::ops::Deref for ScratchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("scratch present until drop")
    }
}

impl<T: Default> std::ops::DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("scratch present until drop")
    }
}

impl<T: Default> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(value) = self.value.take() {
            self.slot.free.lock().push(value);
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::WorkerPool;

    #[test]
    fn checkout_returns_value_on_drop() {
        let slot: ScratchSlot<Vec<u8>> = ScratchSlot::new();
        {
            let mut g = slot.checkout();
            g.extend_from_slice(b"warm");
            assert_eq!(slot.parked(), 0);
        }
        assert_eq!(slot.parked(), 1);
        // The returned value keeps its capacity (contents are the
        // checkout's responsibility to clear).
        let g = slot.checkout();
        assert!(g.capacity() >= 4);
    }

    #[test]
    fn concurrent_checkouts_bounded_by_jobs_in_flight() {
        let pool = WorkerPool::new(4);
        let slot: ScratchSlot<Vec<u64>> = ScratchSlot::new();
        for _round in 0..3 {
            pool.scope(|s| {
                for i in 0..16u64 {
                    let slot = &slot;
                    s.submit(move || {
                        let mut g = slot.checkout();
                        g.clear();
                        g.push(i);
                    });
                }
            });
        }
        // Never more live values than workers.
        assert!(slot.parked() <= pool.threads());
        assert!(slot.parked() >= 1);
    }

    #[test]
    fn serial_pool_converges_to_one_value() {
        let pool = WorkerPool::new(1);
        let slot: ScratchSlot<Vec<u64>> = ScratchSlot::new();
        pool.scope(|s| {
            for _ in 0..8 {
                let slot = &slot;
                s.submit(move || {
                    let mut g = slot.checkout();
                    g.resize(100, 0);
                });
            }
        });
        assert_eq!(slot.parked(), 1);
    }
}
