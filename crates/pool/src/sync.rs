//! Synchronization shim: the real `parking_lot` primitives normally,
//! loom's model-checked replacements under `RUSTFLAGS="--cfg loom"`.
//!
//! Everything in `lib.rs` talks to this module's `parking_lot`-flavored
//! surface (`lock()` returns the guard directly, `Condvar::wait` takes
//! `&mut guard`, `wait_for` returns `bool`), so swapping the backend is
//! invisible to the pool logic — which is the point: the loom tests in
//! `tests/loom_pool.rs` exercise the exact code that ships.

#[cfg(not(loom))]
mod imp {
    pub(crate) use parking_lot::{Condvar, Mutex};

    pub(crate) type JoinHandle = std::thread::JoinHandle<()>;

    pub(crate) fn spawn_worker(f: impl FnOnce() + Send + 'static) -> JoinHandle {
        std::thread::Builder::new()
            .name("er-pool".into())
            .spawn(f)
            .expect("failed to spawn pool worker")
    }
}

#[cfg(loom)]
mod imp {
    use std::ops::{Deref, DerefMut};
    use std::time::Duration;

    /// `loom::sync::Mutex` adapted to the `parking_lot` surface.
    #[derive(Default)]
    pub(crate) struct Mutex<T>(loom::sync::Mutex<T>);

    // Loom's mutex doesn't implement `Debug`; callers that derive it
    // (e.g. `ScratchSlot`) only need an opaque placeholder.
    impl<T> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Mutex(<loom>)")
        }
    }

    impl<T> Mutex<T> {
        pub(crate) fn new(data: T) -> Self {
            Self(loom::sync::Mutex::new(data))
        }

        pub(crate) fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(Some(self.0.lock().expect("loom mutex poisoned")))
        }
    }

    /// Guard wrapper: holds an `Option` so `Condvar` methods can move
    /// the inner loom guard out (loom's `wait` consumes it) and back.
    pub(crate) struct MutexGuard<'a, T>(Option<loom::sync::MutexGuard<'a, T>>);

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.0.as_ref().expect("guard vacated by condvar wait")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.0.as_mut().expect("guard vacated by condvar wait")
        }
    }

    #[derive(Default)]
    pub(crate) struct Condvar(loom::sync::Condvar);

    impl Condvar {
        pub(crate) fn new() -> Self {
            Self(loom::sync::Condvar::new())
        }

        pub(crate) fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            let inner = guard.0.take().expect("guard vacated by condvar wait");
            guard.0 = Some(self.0.wait(inner).expect("loom mutex poisoned"));
        }

        /// Returns `true` when the wake came from the (simulated)
        /// timeout, matching `parking_lot::Condvar::wait_for`.
        pub(crate) fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, dur: Duration) -> bool {
            let inner = guard.0.take().expect("guard vacated by condvar wait");
            let (inner, result) = self
                .0
                .wait_timeout(inner, dur)
                .expect("loom mutex poisoned");
            guard.0 = Some(inner);
            result.timed_out()
        }

        pub(crate) fn notify_one(&self) {
            self.0.notify_one();
        }

        pub(crate) fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    pub(crate) type JoinHandle = loom::thread::JoinHandle<()>;

    pub(crate) fn spawn_worker(f: impl FnOnce() + Send + 'static) -> JoinHandle {
        loom::thread::spawn(f)
    }
}

pub(crate) use imp::{spawn_worker, Condvar, JoinHandle, Mutex};
