//! # er-pool
//!
//! A shared worker pool for the fusion pipeline's parallel hot paths.
//!
//! The paper runs its experiments on a 32-core server and leans on
//! multi-threaded matrix products; this crate is the corresponding
//! substrate. One [`WorkerPool`] is created per pipeline run (see
//! `er_core::Resolver`) and threaded through every hot phase — RSS walks,
//! ITER propagation, CliqueRank components, dense matrix products, and
//! graph construction — replacing the per-call scoped-thread spawns the
//! phases used individually before.
//!
//! # Design
//!
//! * **Persistent workers.** `WorkerPool::new(threads)` spawns
//!   `threads − 1` OS threads once; the thread calling [`WorkerPool::scope`]
//!   is the remaining worker. A pool of 1 spawns nothing and runs every
//!   job inline, so serial callers pay only a branch.
//! * **Scoped borrowing jobs.** [`Scope::submit`] accepts closures that
//!   borrow from the caller's stack (like `std::thread::scope`); the scope
//!   joins all of its jobs before it returns, which is what makes the
//!   lifetime erasure inside sound.
//! * **Help-while-waiting.** A thread waiting on its scope pops queued
//!   jobs and runs them instead of blocking. Nested scopes (a CliqueRank
//!   component job running pooled matrix products inside) therefore
//!   cannot deadlock: any queued job can always be executed by the thread
//!   waiting on it.
//! * **Deterministic by construction.** The pool gives no ordering
//!   guarantees, so every phase that uses it is written to be
//!   *elementwise* parallel — jobs write disjoint output ranges and all
//!   floating-point reductions stay serial — making results bit-identical
//!   at every thread count. The pool itself only needs to run each job
//!   exactly once.
//!
//! ```
//! use er_pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let mut out = vec![0u64; 1000];
//! pool.scope(|s| {
//!     for (i, chunk) in out.chunks_mut(250).enumerate() {
//!         s.submit(move || {
//!             for (j, v) in chunk.iter_mut().enumerate() {
//!                 *v = (i * 250 + j) as u64;
//!             }
//!         });
//!     }
//! });
//! assert_eq!(out[999], 999);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod scratch;
mod sync;

pub use scratch::{ScratchGuard, ScratchSlot};

use crate::sync::{Condvar, Mutex};

/// A type-erased queued job. The `'static` is a lie told by
/// [`Scope::submit`]; the scope's join-before-return discipline is what
/// keeps the borrowed data alive until the job has run.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// How a phase should execute one parallelizable region, as decided by
/// [`WorkerPool::dispatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Run on the caller thread with zero pool coordination — no scope,
    /// no queue, no condvar, no barrier.
    SerialInline,
    /// Fan out across the pool's workers.
    Parallel,
}

impl DispatchMode {
    /// Convenience for `self == DispatchMode::Parallel`.
    pub fn is_parallel(self) -> bool {
        matches!(self, DispatchMode::Parallel)
    }
}

/// Size-aware serial/parallel cutover for pooled phases.
///
/// Every pooled hot path estimates its work in *elementary operations*
/// (edges touched, pairs scored, multiply-adds, walk steps) and asks the
/// pool whether fanning out is worth the coordination cost. Below
/// [`DispatchPolicy::serial_below`] the region runs inline on the caller
/// thread; queueing a job, waking a worker, and joining a scope cost on
/// the order of microseconds, so regions worth less than a few tens of
/// thousands of scalar operations lose more to coordination than they
/// gain from extra cores — the measured source of the t1 → t4 slowdowns
/// on the small datasets.
///
/// The default cutover can be overridden with the `ER_DISPATCH`
/// environment variable: `serial` forces every region inline, `parallel`
/// forces every region to fan out, and an integer sets `serial_below`
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchPolicy {
    /// Estimated elementary-operation count below which a region runs
    /// inline on the caller thread.
    pub serial_below: usize,
}

impl DispatchPolicy {
    /// Default cutover: ~64k elementary operations, a few tens of
    /// microseconds of scalar work — the break-even region for one
    /// queue push + condvar wake + scope join round-trip.
    pub const DEFAULT_SERIAL_BELOW: usize = 1 << 16;

    /// A policy with the given cutover.
    pub const fn new(serial_below: usize) -> Self {
        Self { serial_below }
    }

    /// Every region runs inline, regardless of size.
    pub const fn always_serial() -> Self {
        Self {
            serial_below: usize::MAX,
        }
    }

    /// Every region fans out, regardless of size (PR-5-era behavior;
    /// useful for isolating coordination overhead in benchmarks).
    pub const fn always_parallel() -> Self {
        Self { serial_below: 0 }
    }

    /// Reads `ER_DISPATCH` (`serial` | `parallel` | integer cutover);
    /// falls back to the default policy when unset or unparsable.
    pub fn from_env() -> Self {
        match std::env::var("ER_DISPATCH") {
            Ok(v) => Self::parse(&v).unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }

    /// Parses an `ER_DISPATCH`-style value.
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim() {
            "" => None,
            "serial" => Some(Self::always_serial()),
            "parallel" => Some(Self::always_parallel()),
            n => n.parse::<usize>().ok().map(Self::new),
        }
    }
}

impl Default for DispatchPolicy {
    fn default() -> Self {
        Self::new(Self::DEFAULT_SERIAL_BELOW)
    }
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Queue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl Queue {
    /// Pushes a job and returns the queue depth right after the push —
    /// the pool's utilization stats track the high-water mark.
    fn push(&self, job: Job) -> usize {
        let depth = {
            let mut state = self.state.lock();
            state.jobs.push_back(job);
            state.jobs.len()
        };
        self.ready.notify_one();
        depth
    }

    fn try_pop(&self) -> Option<Job> {
        self.state.lock().jobs.pop_front()
    }
}

/// Per-worker utilization, accumulated only when er-obs recording was on
/// at pool construction; published into the registry when the pool drops.
/// Plain `std` atomics with relaxed ordering: the numbers are telemetry,
/// never control flow, so they stay invisible to the loom model checks.
struct PoolStats {
    /// One cell per worker; index 0 is the scoping/submitting thread
    /// (inline serial jobs plus help-while-waiting work land there).
    workers: Vec<WorkerCell>,
    /// Jobs executed by a thread helping while it waited on its scope.
    helped: AtomicU64,
    /// Jobs pushed through the shared queue (excludes serial inline runs).
    queued: AtomicU64,
    /// High-water mark of the shared queue depth.
    max_queue_depth: AtomicU64,
}

#[derive(Default)]
struct WorkerCell {
    busy_ns: AtomicU64,
    tasks: AtomicU64,
}

impl PoolStats {
    fn new(threads: usize) -> Self {
        Self {
            workers: (0..threads).map(|_| WorkerCell::default()).collect(),
            helped: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        }
    }

    fn note_depth(&self, depth: usize) {
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn publish(&self) {
        for (i, cell) in self.workers.iter().enumerate() {
            er_obs::worker_record(
                i as u64,
                cell.busy_ns.load(Ordering::Relaxed),
                cell.tasks.load(Ordering::Relaxed),
            );
        }
        let executed: u64 = self
            .workers
            .iter()
            .map(|c| c.tasks.load(Ordering::Relaxed))
            .sum();
        er_obs::counter_add("pool_jobs_total", executed);
        er_obs::counter_add(
            "pool_queued_jobs_total",
            self.queued.load(Ordering::Relaxed),
        );
        er_obs::counter_add(
            "pool_helped_jobs_total",
            self.helped.load(Ordering::Relaxed),
        );
        er_obs::gauge_set(
            "pool_max_queue_depth",
            self.max_queue_depth.load(Ordering::Relaxed) as f64,
        );
    }
}

/// Runs `job`, attributing its wall time and count to `worker` when
/// stats are being kept; a plain call otherwise.
fn run_attributed(stats: Option<&PoolStats>, worker: usize, job: impl FnOnce()) {
    match stats {
        Some(stats) => {
            let start = Instant::now();
            job();
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let cell = &stats.workers[worker];
            cell.busy_ns.fetch_add(ns, Ordering::Relaxed);
            cell.tasks.fetch_add(1, Ordering::Relaxed);
        }
        None => job(),
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// Dropping the pool shuts the workers down and joins them; jobs already
/// queued still run first (scopes cannot outlive the pool, so in practice
/// the queue is empty by then).
pub struct WorkerPool {
    queue: Arc<Queue>,
    handles: Vec<sync::JoinHandle>,
    threads: usize,
    policy: DispatchPolicy,
    /// Present iff er-obs recording was on when the pool was built.
    stats: Option<Arc<PoolStats>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total workers (the scoping thread
    /// counts as one, so this spawns `threads − 1` OS threads). `0` is
    /// treated as 1. The dispatch policy comes from the environment
    /// ([`DispatchPolicy::from_env`]).
    pub fn new(threads: usize) -> Self {
        Self::with_policy(threads, DispatchPolicy::from_env())
    }

    /// Creates a pool with an explicit [`DispatchPolicy`] instead of the
    /// environment default.
    pub fn with_policy(threads: usize, policy: DispatchPolicy) -> Self {
        let threads = threads.max(1);
        let queue = Arc::new(Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let stats = er_obs::recording().then(|| Arc::new(PoolStats::new(threads)));
        let handles = (1..threads)
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let stats = stats.clone();
                sync::spawn_worker(move || worker_loop(&queue, stats.as_deref(), worker))
            })
            .collect();
        Self {
            queue,
            handles,
            threads,
            policy,
            stats,
        }
    }

    /// A pool sized to the machine (`available_parallelism`).
    pub fn with_available_parallelism() -> Self {
        Self::new(std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
    }

    /// Total worker count, including the scoping thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The pool's serial/parallel cutover policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Decides how a region estimated at `work` elementary operations
    /// should run: inline on the caller thread when the pool is serial or
    /// the work is below the policy cutover, fanned out otherwise. Each
    /// decision bumps the `pool.dispatch.serial_inline` /
    /// `pool.dispatch.parallel` er-obs counter so the cutover is
    /// observable in `ER_OBS_OUT` output. Call once per phase run (not
    /// per iteration) so the counters track decisions, not loop trips.
    pub fn dispatch(&self, work: usize) -> DispatchMode {
        // `serial_below == usize::MAX` means "always inline", including
        // for `work == usize::MAX` (where `<` alone would be false).
        let below = self.policy.serial_below;
        let mode = if self.threads == 1 || work < below || below == usize::MAX {
            DispatchMode::SerialInline
        } else {
            DispatchMode::Parallel
        };
        match mode {
            DispatchMode::SerialInline => er_obs::counter_add("pool.dispatch.serial_inline", 1),
            DispatchMode::Parallel => er_obs::counter_add("pool.dispatch.parallel", 1),
        }
        mode
    }

    /// True when the pool has no background workers — [`Scope::submit`]
    /// runs jobs inline. Phases use this to skip parallel bookkeeping.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Runs `f` with a [`Scope`] that can submit borrowing jobs; returns
    /// after every submitted job has finished. A panic in any job is
    /// resurfaced here (the first one, if several).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            tracker: Arc::new(Tracker::default()),
            _env: PhantomData,
        };
        let result = f(&scope);
        scope.join();
        result
    }

    /// Splits `0..len` into per-worker ranges (at most [`Self::threads`]
    /// of them, each at least `min_chunk` long) and runs `f` on each,
    /// in parallel. `f` must only touch state that is safe to share —
    /// for disjoint mutable output, use [`WorkerPool::scope`] with
    /// `chunks_mut` instead.
    pub fn for_each_range<F>(&self, len: usize, min_chunk: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        let ranges = chunk_ranges(len, self.threads, min_chunk);
        if ranges.len() <= 1 {
            f(0..len);
            return;
        }
        let f = &f;
        self.scope(|s| {
            for r in ranges {
                s.submit(move || f(r));
            }
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.queue.state.lock().shutdown = true;
        self.queue.ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        // Publish after joining: every worker has flushed its cells.
        if let Some(stats) = &self.stats {
            stats.publish();
        }
    }
}

fn worker_loop(queue: &Queue, stats: Option<&PoolStats>, worker: usize) {
    loop {
        let job = {
            let mut state = queue.state.lock();
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                queue.ready.wait(&mut state);
            }
        };
        match job {
            // Panics are caught inside the job wrapper (see `submit`), so
            // a panicking job never kills the worker.
            Some(job) => run_attributed(stats, worker, job),
            None => return,
        }
    }
}

/// Per-scope join state: outstanding job count plus the first panic.
#[derive(Default)]
struct Tracker {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// Handle for submitting jobs that may borrow from `'env`; obtained via
/// [`WorkerPool::scope`].
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    tracker: Arc<Tracker>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope")
            .field("pool", &self.pool)
            .field("pending", &*self.tracker.pending.lock())
            .finish_non_exhaustive()
    }
}

impl<'env> Scope<'_, 'env> {
    /// Queues `job` for execution. On a serial pool the job runs inline.
    pub fn submit<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.is_serial() {
            // Inline serial execution counts against worker 0 (the
            // scoping thread) so utilization stays comparable across
            // thread counts.
            run_attributed(self.pool.stats.as_deref(), 0, job);
            return;
        }
        *self.tracker.pending.lock() += 1;
        let tracker = Arc::clone(&self.tracker);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(job);
        // SAFETY: the scope joins every submitted job before returning
        // (`join` runs in `scope` and again, idempotently, from `Drop` if
        // the scope body unwinds), so all `'env` borrows inside `job`
        // outlive its execution.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        let depth = self.pool.queue.push(Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = outcome {
                tracker.panic.lock().get_or_insert(payload);
            }
            let mut pending = tracker.pending.lock();
            *pending -= 1;
            if *pending == 0 {
                tracker.done.notify_all();
            }
        }));
        if let Some(stats) = self.pool.stats.as_deref() {
            stats.queued.fetch_add(1, Ordering::Relaxed);
            stats.note_depth(depth);
        }
    }

    /// Pops and runs one queued job (of any scope), attributing it to
    /// worker 0 as help-while-waiting work. Returns whether a job ran.
    fn help_one(&self) -> bool {
        let Some(job) = self.pool.queue.try_pop() else {
            return false;
        };
        let stats = self.pool.stats.as_deref();
        run_attributed(stats, 0, job);
        if let Some(stats) = stats {
            stats.helped.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Waits for all jobs of this scope, helping run queued work (of any
    /// scope) while waiting; then resurfaces the first job panic.
    fn join(&self) {
        loop {
            if *self.tracker.pending.lock() == 0 {
                break;
            }
            // Prefer helping over sleeping: run any queued job. It may
            // belong to another (possibly nested) scope — that scope's
            // tracker absorbs its result, so helping is always safe.
            if self.help_one() {
                continue;
            }
            let mut pending = self.tracker.pending.lock();
            if *pending == 0 {
                break;
            }
            // Our remaining jobs are running on other threads. They may
            // still enqueue nested work, so sleep with a timeout and loop
            // back to helping rather than blocking indefinitely.
            self.tracker
                .done
                .wait_for(&mut pending, Duration::from_millis(1));
        }
        if let Some(payload) = self.tracker.panic.lock().take() {
            resume_unwind(payload);
        }
    }
}

impl Drop for Scope<'_, '_> {
    fn drop(&mut self) {
        // Normally a no-op (scope() already joined); on unwind out of the
        // scope body this keeps borrowed data alive until jobs finish.
        // Swallow any job panic here — one panic is already in flight.
        loop {
            if *self.tracker.pending.lock() == 0 {
                break;
            }
            if self.help_one() {
                continue;
            }
            let mut pending = self.tracker.pending.lock();
            if *pending == 0 {
                break;
            }
            self.tracker
                .done
                .wait_for(&mut pending, Duration::from_millis(1));
        }
    }
}

/// Splits `0..len` into up to `parts` contiguous ranges of near-equal
/// length, none shorter than `min_chunk` (except a sole final remainder).
/// Returns fewer ranges — possibly one — when `len` is small. The split
/// depends only on `(len, parts, min_chunk)`, never on timing.
pub fn chunk_ranges(len: usize, parts: usize, min_chunk: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(len.div_ceil(min_chunk.max(1)));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    ranges
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.is_serial());
        let mut hits = 0;
        pool.scope(|s| {
            for _ in 0..10 {
                s.submit(|| {}); // inline: must not need Sync on `hits`
            }
            hits += 1;
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn jobs_write_disjoint_chunks() {
        let pool = WorkerPool::new(4);
        let mut out = vec![0usize; 10_000];
        pool.scope(|s| {
            for (i, chunk) in out.chunks_mut(617).enumerate() {
                s.submit(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = i * 617 + j;
                    }
                });
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
    }

    #[test]
    fn scope_returns_value_and_joins_first() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let r = pool.scope(|s| {
            for _ in 0..100 {
                s.submit(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            42
        });
        assert_eq!(r, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = WorkerPool::new(2); // one background worker
        let total = AtomicUsize::new(0);
        pool.scope(|outer| {
            for _ in 0..4 {
                let (pool, total) = (&pool, &total);
                outer.submit(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.submit(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn job_panic_propagates_to_scope_caller() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.submit(|| panic!("job exploded"));
            });
        }));
        assert!(result.is_err());
        // Pool survives the panic and keeps working.
        let ok = AtomicUsize::new(0);
        pool.scope(|s| {
            s.submit(|| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn for_each_range_covers_everything_once() {
        let pool = WorkerPool::new(4);
        let seen = Mutex::new(vec![0u32; 1003]);
        pool.for_each_range(1003, 16, |r| {
            let mut seen = seen.lock();
            for i in r {
                seen[i] += 1;
            }
        });
        assert!(seen.lock().iter().all(|&c| c == 1));
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for (len, parts, min_chunk) in
            [(0, 4, 1), (1, 4, 1), (10, 3, 1), (100, 7, 16), (64, 64, 64)]
        {
            let ranges = chunk_ranges(len, parts, min_chunk);
            let mut covered = 0;
            for r in &ranges {
                assert_eq!(r.start, covered, "contiguous");
                covered = r.end;
            }
            assert_eq!(covered, len);
            if len > 0 {
                assert!(ranges.len() <= parts);
            }
        }
        assert_eq!(chunk_ranges(100, 4, 100).len(), 1);
        assert_eq!(chunk_ranges(100, 4, 50).len(), 2);
    }

    /// Exercises the stats plumbing end-to-end: recording on → pool
    /// keeps cells → drop publishes into the er-obs registry. Uses `>=`
    /// assertions because the registry is process-global and other
    /// tests may run pools inside this recording window.
    #[cfg(feature = "obs")]
    #[test]
    fn pool_publishes_worker_stats_when_recording() {
        er_obs::set_recording(true);
        {
            let pool = WorkerPool::new(3);
            pool.scope(|s| {
                for _ in 0..32 {
                    s.submit(|| {
                        std::hint::black_box(0u64);
                    });
                }
            });
        }
        let report = er_obs::snapshot();
        er_obs::set_recording(false);
        assert!(report.counter("pool_jobs_total") >= 32);
        assert!(report.counter("pool_queued_jobs_total") >= 32);
        let executed: u64 = report.workers.iter().map(|w| w.tasks).sum();
        assert!(executed >= 32);
        assert!(report.gauge("pool_max_queue_depth").is_some());
    }

    /// Dispatch decisions land in the er-obs registry, so the
    /// serial-inline vs pooled split is visible in `ER_OBS_OUT`
    /// JSON/Prometheus exports. `>=` because the registry is
    /// process-global and other tests dispatch inside this window.
    #[cfg(feature = "obs")]
    #[test]
    fn dispatch_counters_are_observable() {
        er_obs::set_recording(true);
        let pool = WorkerPool::with_policy(2, DispatchPolicy::new(100));
        assert_eq!(pool.dispatch(1), DispatchMode::SerialInline);
        assert_eq!(pool.dispatch(100), DispatchMode::Parallel);
        let report = er_obs::snapshot();
        er_obs::set_recording(false);
        assert!(report.counter("pool.dispatch.serial_inline") >= 1);
        assert!(report.counter("pool.dispatch.parallel") >= 1);
        assert!(report
            .to_prometheus()
            .contains("er_pool_dispatch_serial_inline"));
    }

    #[test]
    fn dispatch_policy_parses_env_values() {
        assert_eq!(
            DispatchPolicy::parse("serial"),
            Some(DispatchPolicy::always_serial())
        );
        assert_eq!(
            DispatchPolicy::parse("parallel"),
            Some(DispatchPolicy::always_parallel())
        );
        assert_eq!(
            DispatchPolicy::parse("4096"),
            Some(DispatchPolicy::new(4096))
        );
        assert_eq!(DispatchPolicy::parse(""), None);
        assert_eq!(DispatchPolicy::parse("bogus"), None);
    }

    #[test]
    fn dispatch_cuts_over_at_policy_threshold() {
        let pool = WorkerPool::with_policy(4, DispatchPolicy::new(1000));
        assert_eq!(pool.dispatch(0), DispatchMode::SerialInline);
        assert_eq!(pool.dispatch(999), DispatchMode::SerialInline);
        assert_eq!(pool.dispatch(1000), DispatchMode::Parallel);
        assert_eq!(pool.dispatch(usize::MAX), DispatchMode::Parallel);
        assert!(pool.dispatch(1000).is_parallel());
    }

    #[test]
    fn serial_pool_always_dispatches_inline() {
        let pool = WorkerPool::with_policy(1, DispatchPolicy::always_parallel());
        assert_eq!(pool.dispatch(usize::MAX), DispatchMode::SerialInline);
    }

    #[test]
    fn forced_policies_ignore_work_size() {
        let serial = WorkerPool::with_policy(4, DispatchPolicy::always_serial());
        assert_eq!(serial.dispatch(usize::MAX), DispatchMode::SerialInline);
        let parallel = WorkerPool::with_policy(4, DispatchPolicy::always_parallel());
        assert_eq!(parallel.dispatch(0), DispatchMode::Parallel);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        // The determinism contract: disjoint-output jobs + serial
        // reductions give bit-identical results for any pool size.
        let fixed = |threads: usize| -> Vec<f64> {
            let pool = WorkerPool::new(threads);
            let mut out = vec![0.0f64; 4096];
            pool.scope(|s| {
                for (c, chunk) in out.chunks_mut(512).enumerate() {
                    s.submit(move || {
                        for (i, v) in chunk.iter_mut().enumerate() {
                            *v = ((c * 31 + i) as f64).sin().abs().powf(2.5);
                        }
                    });
                }
            });
            out
        };
        let base = fixed(1);
        for threads in [2, 4] {
            assert_eq!(base, fixed(threads));
        }
    }
}
