//! Model-checked interleaving tests for the worker pool.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//! `cargo xtask loom` (or directly:
//! `RUSTFLAGS="--cfg loom" cargo test -p er-pool --test loom_pool --release`).
//!
//! Each test wraps real pool code in `loom::model`, which explores every
//! distinct thread interleaving of the pool's mutex/condvar operations
//! up to the preemption bound. Models are kept deliberately tiny (one
//! background worker, one or two jobs): the guarantees under test —
//! no lost jobs, no deadlock, panic propagation — are schedule
//! properties, not throughput properties, and small models keep the
//! schedule space exhaustively explorable.

#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use er_pool::{DispatchPolicy, ScratchSlot, WorkerPool};

/// Every submitted job runs exactly once before `scope` returns,
/// wherever the scheduler places it (worker thread or the scoping
/// thread's help-while-waiting loop).
#[test]
fn scope_joins_every_job() {
    loom::model(|| {
        let pool = WorkerPool::new(2); // one background worker
        let mut out = [0u32; 2];
        {
            let mut slots = out.iter_mut();
            let a = slots.next().unwrap();
            let b = slots.next().unwrap();
            pool.scope(|s| {
                s.submit(move || *a += 1);
                s.submit(move || *b += 1);
            });
        }
        assert_eq!(out, [1, 1], "a job was lost or ran twice");
    });
}

/// A nested scope inside a pool job cannot deadlock: the thread joining
/// the inner scope helps run queued jobs instead of blocking, so any
/// queued job can always be executed by the thread waiting on it.
#[test]
fn nested_scope_help_while_waiting() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let mut hit = false;
        {
            let hit = &mut hit;
            pool.scope(|outer| {
                let pool = &pool;
                outer.submit(move || {
                    pool.scope(|inner| {
                        inner.submit(move || *hit = true);
                    });
                });
            });
        }
        assert!(hit, "nested job never ran");
    });
}

/// The pooled GEMM's MR-strip handoff, as a schedule property: the
/// caller packs a shared read-only panel, then strip jobs each check a
/// per-job buffer out of a [`ScratchSlot`] and write disjoint output
/// bands handed out via `split_at_mut`. Under every interleaving, both
/// bands must be written exactly once with the packed data visible to
/// the jobs, and every checked-out buffer must be parked again when the
/// scope joins (no scratch leaks across the strip boundary).
#[test]
fn strip_jobs_checkout_scratch_and_write_disjoint_bands() {
    loom::model(|| {
        let pool = WorkerPool::with_policy(2, DispatchPolicy::always_parallel());
        assert!(pool.dispatch(usize::MAX).is_parallel());
        // "Packed" on the caller thread before the fan-out, like pack_b.
        let b_pack: Vec<u64> = vec![3, 5];
        let strip_a: ScratchSlot<Vec<u64>> = ScratchSlot::new();
        let mut out = [0u64; 2];
        {
            let (lo, hi) = out.split_at_mut(1);
            let (b_pack, strip_a) = (&b_pack, &strip_a);
            pool.scope(|s| {
                for (i, band) in [lo, hi].into_iter().enumerate() {
                    s.submit(move || {
                        let mut a_buf = strip_a.checkout();
                        a_buf.clear();
                        a_buf.push(i as u64 + 1); // "pack" this strip of A
                        band[0] = a_buf[0] * b_pack[i];
                    });
                }
            });
        }
        assert_eq!(out, [3, 10], "a strip band was lost or mis-written");
        let parked = strip_a.parked();
        assert!(
            (1..=2).contains(&parked),
            "scratch buffers leaked across the scope join: parked={parked}"
        );
    });
}

/// Dropping the pool wakes and joins the workers under every schedule,
/// including the one where a worker is still parked on the condvar when
/// shutdown is flagged.
#[test]
fn shutdown_joins_parked_workers() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        drop(pool); // must not deadlock or leak the worker
    });
}

/// Regression pin for the scope's panic contract, under every schedule:
///
/// 1. exactly one payload resurfaces from `scope`, and it is the first
///    one a job stored (both jobs may panic — one of the two payloads,
///    never a mangled third);
/// 2. the scope still joins: the non-panicking work of the other job has
///    completed by the time `scope` unwinds;
/// 3. the pool stays usable afterwards.
#[test]
fn first_panic_payload_wins_and_scope_still_joins() {
    loom::model(|| {
        let pool = WorkerPool::new(2);
        let mut survivor_ran = false;
        {
            let survivor_ran = &mut survivor_ran;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                pool.scope(|s| {
                    s.submit(|| panic!("boom-a"));
                    s.submit(move || {
                        *survivor_ran = true;
                        panic!("boom-b");
                    });
                });
            }));
            let payload = outcome.expect_err("a job panic must unwind out of scope");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
            assert!(
                msg == "boom-a" || msg == "boom-b",
                "unexpected panic payload: {msg:?}"
            );
        }
        assert!(survivor_ran, "scope unwound before joining the second job");
        // The pool must have absorbed the panic without losing a worker.
        let mut after = 0u32;
        {
            let after = &mut after;
            pool.scope(|s| {
                s.submit(move || *after += 1);
            });
        }
        assert_eq!(after, 1, "pool unusable after a job panic");
    });
}
