//! Streaming deduplication with the incremental resolver.
//!
//! A resolver receives records in batches; each re-resolve reuses the
//! previous run's ITER weights as a warm start and replays unchanged
//! record-graph components from the CliqueRank cache, so the cost of an
//! append is proportional to what it touched.
//!
//! Run: `cargo run --release --example incremental_stream`

use std::time::Instant;

use unsupervised_er::incremental::IncrementalResolver;
use unsupervised_er::prelude::*;

fn main() {
    let dataset =
        er_datasets::generators::restaurant::generate(&RestaurantConfig::default().scaled(0.5));
    let mut resolver = IncrementalResolver::new(
        FusionConfig::default(),
        0.035,
        SourcePolicy::WithinSingleSource,
    );

    // Phase 1: bulk-load 80% of the stream.
    let cut = dataset.len() * 4 / 5;
    for r in &dataset.records[..cut] {
        resolver.add_record(r.text.clone(), r.source);
    }
    let t0 = Instant::now();
    let matches_before = resolver.resolve().matches.len();
    let bulk = t0.elapsed();
    let s = resolver.stats();
    println!(
        "bulk load: {cut} records, {matches_before} matches in {bulk:?} \
         ({} components solved, {} cached)",
        s.solved_components, s.cached_components
    );

    // Phase 2: append the remaining 20% in small batches.
    for batch in dataset.records[cut..].chunks(10) {
        for r in batch {
            resolver.add_record(r.text.clone(), r.source);
        }
        let t = Instant::now();
        let matches = resolver.resolve().matches.len();
        let took = t.elapsed();
        let s = resolver.stats();
        println!(
            "+{} records -> {matches} matches in {took:?} \
             (solved {:>3} components, reused {:>3} from cache, {} ITER iterations)",
            batch.len(),
            s.solved_components,
            s.cached_components,
            s.iter_iterations
        );
    }

    println!("\nfinal clusters with more than one record:");
    let outcome = resolver.resolve();
    let multi = outcome.clusters.iter().filter(|c| c.len() > 1).count();
    println!(
        "  {multi} multi-record entities over {} records",
        resolver.len()
    );
}
