//! Citation clustering (the Cora scenario) — big-clique resolution.
//!
//! Citation datasets have heavily skewed cluster sizes; the largest
//! entity in the paper's benchmark has 192 records. This example shows
//! the piece of the framework built for exactly that: the random-walk
//! bonus (Eq. 12) that makes a large clique reachable within S steps,
//! and the transitive clustering of the matched pairs.
//!
//! Run: `cargo run --release --example paper_clustering`

use er_core::{BoostMode, Resolver};
use er_datasets::generators::paper;
use unsupervised_er::pipeline;
use unsupervised_er::prelude::*;

fn main() {
    let dataset = paper::generate(&PaperConfig::default().scaled(0.25));
    let truth_clusters = dataset.entity_clusters();
    let largest = truth_clusters.iter().map(Vec::len).max().unwrap();
    println!(
        "{} citation records, {} entities, largest cluster {largest}",
        dataset.len(),
        truth_clusters.len()
    );

    let prepared = pipeline::prepare_with(&dataset, 0.15);

    // Default configuration (boost on).
    let outcome = Resolver::new(FusionConfig::default()).resolve(&prepared.graph);
    let f1 = er_eval::evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth).f1();

    // Same configuration with the bonus boost disabled.
    let mut no_boost = FusionConfig::default();
    no_boost.cliquerank.boost = BoostMode::Off;
    let crippled = Resolver::new(no_boost).resolve(&prepared.graph);
    let f1_no_boost =
        er_eval::evaluate_pairs(crippled.matches.iter().copied(), &prepared.truth).f1();

    println!("\nfusion F1 with boost: {f1:.3}   without boost: {f1_no_boost:.3}");
    println!("(the bonus of Eq. 12 is what makes the big clique walkable within S=20 steps)");

    // How well was the giant cluster reassembled?
    let giant = truth_clusters.iter().max_by_key(|c| c.len()).unwrap();
    let found = outcome
        .clusters
        .iter()
        .map(|c| c.iter().filter(|r| giant.contains(r)).count())
        .max()
        .unwrap_or(0);
    println!(
        "\ngiant entity: {} of {} records recovered in one predicted cluster",
        found,
        giant.len()
    );

    // Cluster-size histogram of the prediction vs truth.
    let histogram = |clusters: &[Vec<u32>]| {
        let mut h = std::collections::BTreeMap::new();
        for c in clusters {
            *h.entry(match c.len() {
                1 => "1",
                2 => "2",
                3..=9 => "3-9",
                10..=49 => "10-49",
                _ => "50+",
            })
            .or_insert(0usize) += 1;
        }
        h
    };
    println!(
        "\ncluster-size histogram  truth: {:?}",
        histogram(&truth_clusters)
    );
    println!(
        "                     predicted: {:?}",
        histogram(&outcome.clusters)
    );

    assert!(f1 > f1_no_boost, "boost must help on skewed citation data");
    assert!(found * 2 > giant.len(), "giant cluster mostly recovered");
}
