//! Blocking strategies and the price of candidate generation.
//!
//! Shows the blocking schemes in `er_text` on a restaurant-style
//! dataset: how many candidate pairs each produces (reduction ratio)
//! and how many true pairs survive (pair completeness) — the classic
//! blocking trade-off — and then runs the fusion framework on the
//! token-blocked candidates. Alongside the classic token and
//! sorted-neighborhood schemes, the scalable pair from DESIGN.md §16:
//! MinHash/LSH banding and the meta-blocking pipeline (token ∪ LSH
//! blocks → purge → filter → CBS pruning).
//!
//! Run: `cargo run --release --example blocking_scalability`

use er_pool::WorkerPool;
use er_text::blocking::{reduction_ratio, sorted_neighborhood, token_blocking, BlockingStrategy};
use er_text::{CorpusBuilder, LshParams};
use unsupervised_er::pipeline;
use unsupervised_er::prelude::*;

fn main() {
    let dataset =
        er_datasets::generators::restaurant::generate(&RestaurantConfig::default().scaled(0.6));
    let truth: std::collections::HashSet<(u32, u32)> =
        dataset.matching_pairs().into_iter().collect();
    let n = dataset.len();
    println!(
        "{} records, {} possible pairs, {} true matches\n",
        n,
        n * (n - 1) / 2,
        truth.len()
    );

    let corpus = CorpusBuilder::new()
        .extend_texts(dataset.texts())
        .max_df_fraction(0.035)
        .build();

    println!(
        "{:<28} {:>12} {:>16} {:>18}",
        "strategy", "candidates", "reduction ratio", "pair completeness"
    );
    println!("{}", "-".repeat(80));
    let report = |name: &str, candidates: &[(u32, u32)]| {
        let found = candidates.iter().filter(|p| truth.contains(p)).count();
        println!(
            "{:<28} {:>12} {:>16.4} {:>18.4}",
            name,
            candidates.len(),
            reduction_ratio(n, candidates.len()),
            found as f64 / truth.len() as f64
        );
    };
    report("token blocking (cap 200)", &token_blocking(&corpus, 200));
    report("token blocking (cap 20)", &token_blocking(&corpus, 20));
    report("sorted neighborhood w=3", &sorted_neighborhood(&corpus, 3));
    report("sorted neighborhood w=8", &sorted_neighborhood(&corpus, 8));

    // The scalable schemes run on a worker pool (bit-identical at any
    // thread count); threshold 0.5 picks 16 bands x 4 rows over a
    // 64-hash MinHash signature.
    let pool = WorkerPool::new(er_core::default_threads());
    let lsh = BlockingStrategy::Lsh {
        params: LshParams::for_threshold(0.5, 64),
        max_block_size: 128,
    };
    report("minhash lsh (t=0.5)", &lsh.candidate_pairs(&corpus, &pool));
    let meta = BlockingStrategy::meta_default();
    report(
        "meta (token+lsh, cbs>=2)",
        &meta.candidate_pairs(&corpus, &pool),
    );

    // The fusion pipeline's own candidate set IS token blocking.
    let prepared = pipeline::prepare_with(&dataset, 0.035);
    let outcome = er_core::Resolver::new(FusionConfig::default()).resolve(&prepared.graph);
    let counts = er_eval::evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth);
    println!(
        "\nfusion on the token-blocked candidates: F1 = {:.3} over {} candidates \
         ({:.2}% of the pair universe)",
        counts.f1(),
        prepared.graph.pair_count(),
        100.0 * prepared.graph.pair_count() as f64 / (n * (n - 1) / 2) as f64
    );
}
