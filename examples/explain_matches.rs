//! Explaining decisions and querying a resolved corpus.
//!
//! After a resolve, the framework's learned artifacts answer two
//! production questions: *why* were two records matched (shared terms
//! ranked by learned discrimination power), and *which records most
//! likely match a new query* (ranked by the same weights).
//!
//! Run: `cargo run --release --example explain_matches`

use unsupervised_er::explain::{explain_pair, rank_candidates};
use unsupervised_er::pipeline;
use unsupervised_er::prelude::*;

fn main() {
    let dataset =
        er_datasets::generators::product::generate(&ProductConfig::default().scaled(0.15));
    let prepared = pipeline::prepare_with(&dataset, 0.05);
    let outcome = er_core::Resolver::new(FusionConfig::default()).resolve(&prepared.graph);
    println!(
        "resolved {} records into {} matches\n",
        dataset.len(),
        outcome.matches.len()
    );

    // Explain the first few matches.
    println!("=== why were these pairs matched?");
    for &(a, b) in outcome.matches.iter().take(3) {
        let e = explain_pair(&prepared.corpus, &prepared.graph, &outcome, a, b)
            .expect("matched pairs share terms");
        println!(
            "\nrecords {a} & {b}  (p = {:.3}, s = {:.2})",
            e.probability, e.similarity
        );
        println!("  A: {}", dataset.records[a as usize].text);
        println!("  B: {}", dataset.records[b as usize].text);
        for t in e.shared_terms.iter().take(5) {
            println!(
                "    shared {:<16} weight {:.3}  (touches {} candidate pairs)",
                t.term, t.weight, t.pair_count
            );
        }
    }

    // Query lookup: take a real record's text as the query.
    let probe = &dataset.records[dataset.len() - 1];
    println!("\n=== query: {:?}", probe.text);
    for hit in rank_candidates(&prepared.corpus, &outcome, &probe.text, 5) {
        println!(
            "  record {:>4}  score {:.3}  via {:?}",
            hit.record,
            hit.score,
            &hit.shared_terms[..hit.shared_terms.len().min(4)]
        );
    }
}
