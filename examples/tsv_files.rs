//! Running the framework on your own data via the TSV loader.
//!
//! Writes a small dataset to a temp file in the four-column format
//! (`id \t source \t entity \t text`), loads it back, resolves it, and
//! prints the clusters — the workflow for users with the real
//! Fodor/Zagat, Abt-Buy or Cora archives.
//!
//! Run: `cargo run --release --example tsv_files`

use er_datasets::generators::restaurant;
use er_datasets::loader;
use unsupervised_er::pipeline;
use unsupervised_er::prelude::*;

fn main() {
    let dataset = restaurant::generate(&RestaurantConfig {
        records: 120,
        duplicate_pairs: 15,
        seed: 99,
    });
    let path = std::env::temp_dir().join("unsupervised_er_example.tsv");
    loader::save_tsv(&dataset, &path).expect("write TSV");
    println!("wrote {} records to {}", dataset.len(), path.display());

    let loaded = loader::load_tsv(&path, SourcePolicy::WithinSingleSource).expect("read TSV back");
    assert_eq!(loaded.records, dataset.records);

    // Small corpora need the stricter Restaurant-style frequent-term cap
    // (see EXPERIMENTS.md on per-dataset preprocessing).
    let prepared = pipeline::prepare_with(&loaded, 0.035);
    let outcome = er_core::Resolver::new(FusionConfig::default()).resolve(&prepared.graph);
    let run = pipeline::ResolvedRun { prepared, outcome };
    let multi: Vec<_> = run
        .outcome
        .clusters
        .iter()
        .filter(|c| c.len() > 1)
        .collect();
    println!(
        "resolved {} multi-record entities (F1 = {:.3}):",
        multi.len(),
        run.evaluate().f1()
    );
    for cluster in multi.iter().take(5) {
        for &r in *cluster {
            println!("  [{r}] {}", loaded.records[r as usize].text);
        }
        println!();
    }
    let _ = std::fs::remove_file(&path);
}
