//! Cross-source product matching (the Abt-Buy scenario).
//!
//! Two online shops describe the same products differently: one with
//! long marketing prose, one with terse listings. The fusion framework
//! learns from the data alone that alphanumeric model codes are the
//! discriminative terms — the motivating example of the paper's
//! introduction — and only considers cross-source pairs.
//!
//! Run: `cargo run --release --example product_dedup`

use er_datasets::generators::product;
use er_text::TermId;
use unsupervised_er::pipeline;
use unsupervised_er::prelude::*;

fn main() {
    // A 20%-scale Abt-Buy-style dataset: ~216 "abt" + ~218 "buy" records.
    let dataset = product::generate(&ProductConfig::default().scaled(0.2));
    println!(
        "{} records ({} cross-source candidates, {} true matches)",
        dataset.len(),
        dataset.candidate_universe_size(),
        dataset.matching_pairs().len()
    );

    let prepared = pipeline::prepare_with(&dataset, 0.05);
    let outcome = er_core::Resolver::new(FusionConfig::default()).resolve(&prepared.graph);

    // Show the learned term ranking: model codes must outrank everything.
    let mut ranked: Vec<(TermId, f64)> = (0..prepared.corpus.vocab_len())
        .map(|i| (TermId(i as u32), outcome.term_weights[i]))
        .filter(|&(_, w)| w > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 10 terms by learned discrimination power:");
    for (t, w) in ranked.iter().take(10) {
        println!("  {:<16} {:.3}", prepared.corpus.vocab().term(*t), w);
    }
    let top_with_digits = ranked
        .iter()
        .take(10)
        .filter(|(t, _)| {
            prepared
                .corpus
                .vocab()
                .term(*t)
                .chars()
                .any(|c| c.is_ascii_digit())
        })
        .count();
    println!("  ({top_with_digits} of the top 10 are alphanumeric model codes)");

    let counts = er_eval::evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth);
    println!(
        "\nfusion: F1 = {:.3} (P = {:.3}, R = {:.3}), {} matches",
        counts.f1(),
        counts.precision(),
        counts.recall(),
        outcome.matches.len()
    );

    // Contrast with plain Jaccard at its optimal threshold.
    let pairs = prepared.graph.pairs().to_vec();
    let jaccard = er_baselines::evaluate_scorer(
        &er_baselines::JaccardScorer,
        &prepared.corpus,
        &pairs,
        &prepared.truth,
    );
    println!(
        "jaccard (optimal threshold {:.2}): F1 = {:.3}",
        jaccard.threshold, jaccard.f1
    );
    assert!(
        counts.f1() > jaccard.f1,
        "fusion must beat Jaccard on product data"
    );
}
