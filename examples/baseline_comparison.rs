//! Side-by-side comparison of every unsupervised matcher on one dataset.
//!
//! Reproduces a single column of the paper's Table II interactively:
//! string-distance and graph-theoretic baselines (each at its optimal
//! threshold — an upper bound the fusion framework does not get) against
//! ITER+CliqueRank at the fixed universal η = 0.98.
//!
//! Run: `cargo run --release --example baseline_comparison [restaurant|product|paper]`

use er_baselines::{
    HybridScorer, JaccardScorer, PairScorer, SimRankScorer, TfIdfScorer, TwIdfScorer,
};
use er_datasets::generators;
use unsupervised_er::pipeline;
use unsupervised_er::prelude::*;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "restaurant".into());
    let (dataset, cap) = match which.as_str() {
        "restaurant" => (
            generators::restaurant::generate(&RestaurantConfig::default().scaled(0.4)),
            0.035,
        ),
        "product" => (
            generators::product::generate(&ProductConfig::default().scaled(0.3)),
            0.05,
        ),
        "paper" => (
            generators::paper::generate(&PaperConfig::default().scaled(0.25)),
            0.15,
        ),
        other => panic!("unknown dataset {other:?}; use restaurant|product|paper"),
    };
    println!(
        "dataset: {} ({} records, {} true pairs)",
        dataset.name,
        dataset.len(),
        dataset.matching_pairs().len()
    );

    let prepared = pipeline::prepare_with(&dataset, cap);
    let pairs = prepared.graph.pairs().to_vec();
    println!("{} candidate pairs share at least one term\n", pairs.len());

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>12}",
        "method", "F1", "P", "R", "threshold"
    );
    println!("{}", "-".repeat(64));
    let scorers: Vec<Box<dyn PairScorer>> = vec![
        Box::new(JaccardScorer),
        Box::new(TfIdfScorer),
        Box::new(SimRankScorer::default()),
        Box::new(TwIdfScorer::default()),
        Box::new(HybridScorer::default()),
    ];
    for scorer in &scorers {
        let r = er_baselines::evaluate_scorer(
            scorer.as_ref(),
            &prepared.corpus,
            &pairs,
            &prepared.truth,
        );
        println!(
            "{:<22} {:>8.3} {:>8.3} {:>8.3} {:>12.4}",
            scorer.name(),
            r.f1,
            r.counts.precision(),
            r.counts.recall(),
            r.threshold
        );
    }

    let outcome = er_core::Resolver::new(FusionConfig::default()).resolve(&prepared.graph);
    let c = er_eval::evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth);
    println!(
        "{:<22} {:>8.3} {:>8.3} {:>8.3} {:>12}",
        "ITER+CliqueRank",
        c.f1(),
        c.precision(),
        c.recall(),
        "η=0.98 fixed"
    );
}
