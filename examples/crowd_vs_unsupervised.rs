//! Crowd-assisted vs unsupervised resolution: accuracy against budget.
//!
//! The paper's core economic argument (§VII-D): crowd methods reach high
//! F1 but pay for every verified pair, while the fusion framework pays
//! nothing. This example runs CrowdER-style and TransM-style strategies
//! against a simulated oracle at several accuracy levels and prints the
//! question bill next to the unsupervised result.
//!
//! Run: `cargo run --release --example crowd_vs_unsupervised`

use er_crowd::{crowder_resolve, transm_resolve, CrowdErConfig, NoisyOracle, TransMConfig};
use er_datasets::generators::restaurant;
use er_text::tokenize_normalized;
use unsupervised_er::pipeline;
use unsupervised_er::prelude::*;

fn main() {
    let dataset = restaurant::generate(&RestaurantConfig::default().scaled(0.5));
    let prepared = pipeline::prepare_with(&dataset, 0.035);
    let truth = &prepared.truth;
    println!(
        "{} records, {} candidate pairs, {} true matches\n",
        dataset.len(),
        prepared.graph.pair_count(),
        truth.total()
    );

    // Machine-side scores for the crowd filter: raw-token Jaccard.
    let raw_sets: Vec<Vec<String>> = dataset
        .texts()
        .map(|t| {
            let mut v = tokenize_normalized(t);
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let scored: Vec<(u32, u32, f64)> = prepared
        .graph
        .pairs()
        .iter()
        .map(|p| {
            let (sa, sb) = (&raw_sets[p.a as usize], &raw_sets[p.b as usize]);
            let inter = sa.iter().filter(|t| sb.binary_search(t).is_ok()).count();
            let union = sa.len() + sb.len() - inter;
            (p.a, p.b, inter as f64 / union.max(1) as f64)
        })
        .collect();

    println!(
        "{:<28} {:>10} {:>8} {:>8} {:>8}",
        "method", "questions", "F1", "P", "R"
    );
    println!("{}", "-".repeat(68));
    for accuracy in [1.0, 0.95, 0.85] {
        let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), accuracy, 7);
        let out = crowder_resolve(
            &scored,
            &CrowdErConfig {
                machine_threshold: 0.15,
            },
            &mut oracle,
        );
        let c = er_eval::evaluate_pairs(out.matches.iter().copied(), truth);
        println!(
            "{:<28} {:>10} {:>8.3} {:>8.3} {:>8.3}",
            format!("CrowdER (worker acc {accuracy})"),
            out.questions,
            c.f1(),
            c.precision(),
            c.recall()
        );

        let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), accuracy, 7);
        let out = transm_resolve(
            dataset.len(),
            &scored,
            &TransMConfig {
                machine_threshold: 0.15,
            },
            &mut oracle,
        );
        let c = er_eval::evaluate_pairs(out.matches.iter().copied(), truth);
        println!(
            "{:<28} {:>10} {:>8.3} {:>8.3} {:>8.3}",
            format!("TransM (worker acc {accuracy})"),
            out.questions,
            c.f1(),
            c.precision(),
            c.recall()
        );
    }

    let outcome = er_core::Resolver::new(FusionConfig::default()).resolve(&prepared.graph);
    let c = er_eval::evaluate_pairs(outcome.matches.iter().copied(), truth);
    println!(
        "{:<28} {:>10} {:>8.3} {:>8.3} {:>8.3}",
        "ITER+CliqueRank",
        0,
        c.f1(),
        c.precision(),
        c.recall()
    );
    println!(
        "\nThe unsupervised framework pays zero questions; crowd methods trade\n\
         budget for accuracy and degrade with worker error (the paper's §VII-D\n\
         cost argument). TransM's transitivity saves questions over CrowdER."
    );
}
