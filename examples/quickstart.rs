//! Quickstart: resolve duplicate records from raw text in ~30 lines.
//!
//! Run: `cargo run --release --example quickstart`

use unsupervised_er::pipeline;
use unsupervised_er::prelude::*;

fn main() {
    // Six raw records: three real-world restaurants, two of them listed
    // twice with format noise.
    let records = vec![
        Record {
            id: 0,
            source: 0,
            entity: 0,
            text: "Fenix at the Argyle 8358 Sunset Blvd West Hollywood 213 848 6677 french".into(),
        },
        Record {
            id: 1,
            source: 0,
            entity: 1,
            text: "Grill on the Alley 9560 Dayton Way Beverly Hills 310 276 0615 american".into(),
        },
        Record {
            id: 2,
            source: 0,
            entity: 0,
            text: "fenix 8358 sunset blvd w hollywood 213-848-6677".into(),
        },
        Record {
            id: 3,
            source: 0,
            entity: 2,
            text: "Art's Deli 12224 Ventura Blvd Studio City 818 762 1221 delis".into(),
        },
        Record {
            id: 4,
            source: 0,
            entity: 1,
            text: "grill the 9560 dayton way beverly hills 310/276-0615".into(),
        },
        Record {
            id: 5,
            source: 0,
            entity: 3,
            text: "Cafe Bizou 7364 Melrose Ave Los Angeles 310 655 6566 french".into(),
        },
    ];
    let dataset = Dataset::new("quickstart", records, SourcePolicy::WithinSingleSource);

    // The paper's universal configuration: α = 20, S = 20, η = 0.98,
    // five ITER ⇄ CliqueRank rounds. No labels, no tuning.
    let run = pipeline::resolve_dataset(&dataset, &FusionConfig::default());

    println!("matching probabilities (candidate pairs sharing terms):");
    for (pair, p) in run
        .prepared
        .graph
        .pairs()
        .iter()
        .zip(&run.outcome.matching_probabilities)
    {
        println!(
            "  records {} & {}: p = {:.3}  {}",
            pair.a,
            pair.b,
            p,
            if *p >= 0.98 { "<- same entity" } else { "" }
        );
    }

    println!("\nresolved entities:");
    for cluster in &run.outcome.clusters {
        let texts: Vec<&str> = cluster
            .iter()
            .map(|&r| dataset.records[r as usize].text.as_str())
            .collect();
        println!("  {texts:?}");
    }

    let counts = run.evaluate();
    println!(
        "\npairwise F1 = {:.3} (P = {:.3}, R = {:.3})",
        counts.f1(),
        counts.precision(),
        counts.recall()
    );
    assert!(counts.f1() > 0.99, "quickstart should resolve perfectly");
}
