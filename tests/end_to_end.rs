//! End-to-end integration tests: generator → pipeline → fusion →
//! evaluation, across all three benchmark families.
//!
//! Scales are kept small so the suite stays fast in debug builds; the
//! full-scale numbers live in EXPERIMENTS.md.

use er_core::{FusionConfig, Resolver};
use er_datasets::{generators, PaperConfig, ProductConfig, RestaurantConfig};
use unsupervised_er::pipeline;

fn quick(rounds: usize) -> FusionConfig {
    let mut cfg = FusionConfig {
        rounds,
        ..Default::default()
    };
    cfg.cliquerank.threads = 1;
    cfg
}

#[test]
fn restaurant_resolves_with_high_f1() {
    let d = generators::restaurant::generate(&RestaurantConfig::default().scaled(0.25));
    let prepared = pipeline::prepare_with(&d, 0.035);
    let outcome = Resolver::new(quick(2)).resolve(&prepared.graph);
    let c = er_eval::evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth);
    assert!(c.f1() > 0.8, "restaurant F1 too low: {c:?}");
}

#[test]
fn product_resolves_cross_source_only() {
    let d = generators::product::generate(&ProductConfig::default().scaled(0.15));
    let prepared = pipeline::prepare_with(&d, 0.05);
    let outcome = Resolver::new(quick(2)).resolve(&prepared.graph);
    for &(a, b) in &outcome.matches {
        assert!(
            d.is_candidate(a, b),
            "match ({a},{b}) violates the cross-source policy"
        );
    }
    let c = er_eval::evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth);
    assert!(c.f1() > 0.7, "product F1 too low: {c:?}");
}

#[test]
fn paper_recovers_skewed_clusters() {
    let d = generators::paper::generate(&PaperConfig::default().scaled(0.12));
    let prepared = pipeline::prepare_with(&d, 0.15);
    let outcome = Resolver::new(quick(2)).resolve(&prepared.graph);
    let c = er_eval::evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth);
    assert!(c.f1() > 0.7, "paper F1 too low: {c:?}");
    // The giant cluster must be substantially reassembled.
    let clusters = d.entity_clusters();
    let giant = clusters.iter().max_by_key(|c| c.len()).unwrap();
    let best = outcome
        .clusters
        .iter()
        .map(|c| c.iter().filter(|r| giant.contains(r)).count())
        .max()
        .unwrap_or(0);
    assert!(
        best * 2 > giant.len(),
        "giant cluster fragmented: best {best} of {}",
        giant.len()
    );
}

#[test]
fn fusion_is_deterministic() {
    let d = generators::restaurant::generate(&RestaurantConfig::default().scaled(0.15));
    let prepared = pipeline::prepare_with(&d, 0.035);
    let a = Resolver::new(quick(2)).resolve(&prepared.graph);
    let b = Resolver::new(quick(2)).resolve(&prepared.graph);
    assert_eq!(a.matches, b.matches);
    assert_eq!(a.matching_probabilities, b.matching_probabilities);
    assert_eq!(a.term_weights, b.term_weights);
}

#[test]
fn probabilities_and_weights_are_well_formed() {
    let d = generators::product::generate(&ProductConfig::default().scaled(0.1));
    let prepared = pipeline::prepare_with(&d, 0.05);
    let outcome = Resolver::new(quick(2)).resolve(&prepared.graph);
    assert_eq!(
        outcome.matching_probabilities.len(),
        prepared.graph.pair_count()
    );
    for &p in &outcome.matching_probabilities {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    }
    for &w in &outcome.term_weights {
        assert!(
            (0.0..1.0).contains(&w) || w == 0.0,
            "weight out of range: {w}"
        );
    }
    // Clusters partition the records.
    let mut seen = vec![false; d.len()];
    for cluster in &outcome.clusters {
        for &r in cluster {
            assert!(!seen[r as usize], "record {r} in two clusters");
            seen[r as usize] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));
}

#[test]
fn stricter_eta_yields_fewer_matches() {
    let d = generators::restaurant::generate(&RestaurantConfig::default().scaled(0.15));
    let prepared = pipeline::prepare_with(&d, 0.035);
    let mut counts = Vec::new();
    for eta in [0.5, 0.9, 0.98, 1.0] {
        let mut cfg = quick(1);
        cfg.eta = eta;
        let outcome = Resolver::new(cfg).resolve(&prepared.graph);
        counts.push(outcome.matches.len());
    }
    for w in counts.windows(2) {
        assert!(w[0] >= w[1], "match count must shrink with eta: {counts:?}");
    }
}

#[test]
fn tsv_round_trip_preserves_resolution() {
    let d = generators::restaurant::generate(&RestaurantConfig {
        records: 80,
        duplicate_pairs: 10,
        seed: 5,
    });
    let path = std::env::temp_dir().join("er_integration_roundtrip.tsv");
    er_datasets::loader::save_tsv(&d, &path).unwrap();
    let loaded =
        er_datasets::loader::load_tsv(&path, er_datasets::SourcePolicy::WithinSingleSource)
            .unwrap();
    let _ = std::fs::remove_file(&path);

    let run_a = {
        let p = pipeline::prepare_with(&d, 0.035);
        Resolver::new(quick(2)).resolve(&p.graph)
    };
    let run_b = {
        let p = pipeline::prepare_with(&loaded, 0.035);
        Resolver::new(quick(2)).resolve(&p.graph)
    };
    assert_eq!(run_a.matches, run_b.matches);
}
