//! Integration tests pinning the paper's qualitative claims — the
//! relationships its evaluation section argues for, checked at reduced
//! scale on every run. (Quantitative tables live in the bench targets.)

use er_baselines::{JaccardScorer, PairScorer, TwIdfScorer};
use er_core::{run_iter, BoostMode, FusionConfig, IterConfig, Resolver};
use er_datasets::{generators, PaperConfig, ProductConfig, RestaurantConfig};
use er_eval::{evaluate_pairs, spearman_rho, term_discriminativeness};
use unsupervised_er::pipeline;

fn quick(rounds: usize) -> FusionConfig {
    let mut cfg = FusionConfig {
        rounds,
        ..Default::default()
    };
    cfg.cliquerank.threads = 1;
    cfg
}

/// §I / Table II: on product data, term-weight learning must beat raw
/// set overlap — model codes matter more than marketing words.
#[test]
fn fusion_beats_jaccard_on_product_data() {
    let d = generators::product::generate(&ProductConfig::default().scaled(0.15));
    let prepared = pipeline::prepare_with(&d, 0.05);
    let outcome = Resolver::new(quick(2)).resolve(&prepared.graph);
    let fusion_f1 = evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth).f1();
    let pairs = prepared.graph.pairs().to_vec();
    let jaccard =
        er_baselines::evaluate_scorer(&JaccardScorer, &prepared.corpus, &pairs, &prepared.truth);
    assert!(
        fusion_f1 > jaccard.f1,
        "fusion {fusion_f1} must beat Jaccard {} on product data",
        jaccard.f1
    );
}

/// Table IV: ITER's weights rank terms by discrimination power far
/// better than PageRank salience does.
#[test]
fn iter_weights_outcorrelate_pagerank() {
    let d = generators::restaurant::generate(&RestaurantConfig::default().scaled(0.25));
    let prepared = pipeline::prepare_with(&d, 0.035);
    let graph = &prepared.graph;
    let truth = &prepared.truth;

    let mut gt = Vec::new();
    let mut idx = Vec::new();
    for t in 0..graph.term_count() as u32 {
        let pairs: Vec<(u32, u32)> = graph
            .pairs_of_term(t)
            .iter()
            .map(|&p| {
                let pair = graph.pair(p);
                (pair.a, pair.b)
            })
            .collect();
        if let Some(s) = term_discriminativeness(&pairs, |a, b| truth.is_match(a, b)) {
            gt.push(s);
            idx.push(t as usize);
        }
    }
    let iter_out = run_iter(
        graph,
        &vec![1.0; graph.pair_count()],
        &IterConfig::default(),
    );
    let pagerank = TwIdfScorer::default().term_salience(&prepared.corpus);
    let w_iter: Vec<f64> = idx.iter().map(|&t| iter_out.term_weights[t]).collect();
    let w_pr: Vec<f64> = idx.iter().map(|&t| pagerank[t]).collect();
    let rho_iter = spearman_rho(&w_iter, &gt);
    let rho_pr = spearman_rho(&w_pr, &gt);
    assert!(rho_iter > 0.6, "ITER correlation too weak: {rho_iter}");
    assert!(
        rho_iter > rho_pr + 0.3,
        "ITER ({rho_iter}) must clearly beat PageRank ({rho_pr})"
    );
}

/// §VI-B: without the bonus boost, big cliques cannot be resolved.
#[test]
fn boost_is_essential_for_big_cliques() {
    let d = generators::paper::generate(&PaperConfig::default().scaled(0.12));
    let prepared = pipeline::prepare_with(&d, 0.15);
    let with = Resolver::new(quick(1)).resolve(&prepared.graph);
    let mut cfg = quick(1);
    cfg.cliquerank.boost = BoostMode::Off;
    let without = Resolver::new(cfg).resolve(&prepared.graph);
    let f1_with = evaluate_pairs(with.matches.iter().copied(), &prepared.truth).f1();
    let f1_without = evaluate_pairs(without.matches.iter().copied(), &prepared.truth).f1();
    assert!(
        f1_with > f1_without + 0.2,
        "boost {f1_with} vs no boost {f1_without}"
    );
}

/// Table V: reinforcement must not degrade accuracy, and on product data
/// it must improve it.
#[test]
fn reinforcement_helps_product() {
    let d = generators::product::generate(&ProductConfig::default().scaled(0.15));
    let prepared = pipeline::prepare_with(&d, 0.05);
    let one = Resolver::new(quick(1)).resolve(&prepared.graph);
    let three = Resolver::new(quick(3)).resolve(&prepared.graph);
    let f1_one = evaluate_pairs(one.matches.iter().copied(), &prepared.truth).f1();
    let f1_three = evaluate_pairs(three.matches.iter().copied(), &prepared.truth).f1();
    assert!(
        f1_three + 0.02 >= f1_one,
        "reinforcement degraded: {f1_one} -> {f1_three}"
    );
}

/// §V-A: a term occurring only in matching pairs must end up weighted
/// above a term spread across many non-matching pairs.
#[test]
fn discriminative_terms_learn_higher_weights() {
    let d = generators::product::generate(&ProductConfig::default().scaled(0.1));
    let prepared = pipeline::prepare_with(&d, 0.05);
    let outcome = Resolver::new(quick(2)).resolve(&prepared.graph);
    let graph = &prepared.graph;
    let truth = &prepared.truth;
    // Mean weight of perfectly discriminative vs perfectly noisy terms.
    let (mut disc, mut noisy) = (Vec::new(), Vec::new());
    for t in 0..graph.term_count() as u32 {
        let pairs = graph.pairs_of_term(t);
        if pairs.len() < 2 {
            continue;
        }
        let matching = pairs
            .iter()
            .filter(|&&p| {
                let pair = graph.pair(p);
                truth.is_match(pair.a, pair.b)
            })
            .count();
        if matching == pairs.len() {
            disc.push(outcome.term_weights[t as usize]);
        } else if matching == 0 {
            noisy.push(outcome.term_weights[t as usize]);
        }
    }
    assert!(!disc.is_empty() && !noisy.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&disc) > 2.0 * mean(&noisy),
        "discriminative {} vs noisy {}",
        mean(&disc),
        mean(&noisy)
    );
}

/// §IV: the matching probability is a universal criterion — the same
/// η = 0.98 works across domains (no per-dataset threshold tuning).
#[test]
fn universal_eta_works_across_domains() {
    let restaurant = generators::restaurant::generate(&RestaurantConfig::default().scaled(0.2));
    let product = generators::product::generate(&ProductConfig::default().scaled(0.12));
    for (d, cap) in [(&restaurant, 0.035), (&product, 0.05)] {
        let prepared = pipeline::prepare_with(d, cap);
        let outcome = Resolver::new(quick(2)).resolve(&prepared.graph);
        let c = evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth);
        assert!(
            c.f1() > 0.7,
            "η = 0.98 must work unchanged on {}: {c:?}",
            d.name
        );
    }
}

/// The candidate policy is honored end to end: no same-source matches on
/// a two-source dataset, even with a permissive threshold.
#[test]
fn cross_source_policy_is_airtight() {
    let d = generators::product::generate(&ProductConfig::default().scaled(0.1));
    let prepared = pipeline::prepare_with(&d, 0.05);
    let mut cfg = quick(1);
    cfg.eta = 0.1; // deliberately permissive
    let outcome = Resolver::new(cfg).resolve(&prepared.graph);
    for &(a, b) in &outcome.matches {
        assert_ne!(
            d.records[a as usize].source, d.records[b as usize].source,
            "same-source match ({a},{b}) leaked through"
        );
    }
    // Silence the unused-import lint for PairScorer (used in other tests).
    let _: Option<&dyn PairScorer> = None;
}
