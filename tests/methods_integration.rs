//! Integration tests for the baseline families against generated data:
//! supervised classifiers on real pair features, crowd strategies with
//! budget accounting, and the closure evaluation harness.

use er_crowd::{crowder_resolve, transm_resolve, CrowdErConfig, NoisyOracle, TransMConfig};
use er_datasets::{generators, RestaurantConfig};
use er_eval::{evaluate_pairs, sweep_threshold_closure, ScoredPair};
use er_ml::{balanced_split, Classifier, FeatureExtractor, PegasosSvm, StandardScaler};
use unsupervised_er::pipeline;

fn restaurant() -> (er_datasets::Dataset, unsupervised_er::pipeline::Prepared) {
    let d = generators::restaurant::generate(&RestaurantConfig::default().scaled(0.25));
    let p = pipeline::prepare_with(&d, 0.035);
    (d, p)
}

#[test]
fn svm_on_real_features_beats_chance_by_far() {
    let (_, prepared) = restaurant();
    let pairs = prepared.graph.pairs().to_vec();
    let extractor = FeatureExtractor::new(&prepared.corpus);
    let features: Vec<Vec<f64>> = pairs.iter().map(|p| extractor.features(p.a, p.b)).collect();
    let labels: Vec<bool> = pairs
        .iter()
        .map(|p| prepared.truth.is_match(p.a, p.b))
        .collect();
    let split = balanced_split(&labels, 0.5, 3.0, 42);
    let scaler = StandardScaler::fit(&features);
    let scaled = scaler.transform_all(&features);
    let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| scaled[i].clone()).collect();
    let train_y: Vec<bool> = split.train.iter().map(|&i| labels[i]).collect();
    let mut svm = PegasosSvm::new();
    svm.fit(&train_x, &train_y);

    let test_truth = er_eval::TruthPairs::from_pairs(
        split
            .test
            .iter()
            .filter(|&&i| labels[i])
            .map(|&i| (pairs[i].a, pairs[i].b)),
    );
    let predicted = split
        .test
        .iter()
        .filter(|&&i| svm.predict(&scaled[i]))
        .map(|&i| (pairs[i].a, pairs[i].b));
    let c = evaluate_pairs(predicted, &test_truth);
    assert!(c.f1() > 0.7, "supervised SVM should do well here: {c:?}");
}

#[test]
fn perfect_crowd_reaches_near_perfect_f1_with_budget() {
    let (d, prepared) = restaurant();
    let pairs = prepared.graph.pairs().to_vec();
    // Machine scores: shared-term count (any monotone score works).
    let scored: Vec<(u32, u32, f64)> = pairs
        .iter()
        .map(|p| {
            (
                p.a,
                p.b,
                prepared
                    .corpus
                    .shared_term_count(p.a as usize, p.b as usize) as f64,
            )
        })
        .collect();
    let truth = &prepared.truth;
    let mut oracle = NoisyOracle::new(|a, b| truth.is_match(a, b), 1.0, 3);
    let out = crowder_resolve(
        &scored,
        &CrowdErConfig {
            machine_threshold: 1.0,
        },
        &mut oracle,
    );
    let c = evaluate_pairs(out.matches.iter().copied(), truth);
    assert!(c.precision() > 0.999, "perfect oracle cannot err: {c:?}");
    assert!(c.recall() > 0.85, "{c:?}");
    assert!(out.questions > 0 && out.questions <= pairs.len());
    let _ = d;
}

#[test]
fn transm_spends_less_than_crowder() {
    let (d, prepared) = restaurant();
    let pairs = prepared.graph.pairs().to_vec();
    let scored: Vec<(u32, u32, f64)> = pairs
        .iter()
        .map(|p| {
            (
                p.a,
                p.b,
                prepared
                    .corpus
                    .shared_term_count(p.a as usize, p.b as usize) as f64,
            )
        })
        .collect();
    let truth = &prepared.truth;
    let mut o1 = NoisyOracle::new(|a, b| truth.is_match(a, b), 1.0, 3);
    let crowder = crowder_resolve(
        &scored,
        &CrowdErConfig {
            machine_threshold: 1.0,
        },
        &mut o1,
    );
    let mut o2 = NoisyOracle::new(|a, b| truth.is_match(a, b), 1.0, 3);
    let transm = transm_resolve(
        d.len(),
        &scored,
        &TransMConfig {
            machine_threshold: 1.0,
        },
        &mut o2,
    );
    assert!(
        transm.questions <= crowder.questions,
        "transitivity must save questions: {} vs {}",
        transm.questions,
        crowder.questions
    );
}

#[test]
fn closure_sweep_agrees_with_pairwise_on_pair_only_truth() {
    // When every entity has at most 2 records, transitive closure adds
    // nothing, so the closure sweep and the plain sweep coincide.
    let (d, prepared) = restaurant();
    let pairs = prepared.graph.pairs().to_vec();
    let scores: Vec<f64> = pairs
        .iter()
        .map(|p| {
            prepared
                .corpus
                .shared_term_count(p.a as usize, p.b as usize) as f64
        })
        .collect();
    let scored: Vec<ScoredPair> = pairs
        .iter()
        .zip(&scores)
        .map(|(p, &s)| ScoredPair {
            a: p.a,
            b: p.b,
            score: s,
        })
        .collect();
    let labels = pipeline::entity_labels(&d);
    let closure = sweep_threshold_closure(&scored, &labels, 200);
    let plain = er_eval::sweep_threshold(&scored, &prepared.truth, 200);
    // Closure can only help (it may connect a cluster through a chain),
    // and for 2-record entities the chain is the pair itself.
    assert!(closure.f1 + 1e-9 >= plain.f1);
    assert!(
        (closure.f1 - plain.f1).abs() < 0.05,
        "{} vs {}",
        closure.f1,
        plain.f1
    );
}

#[test]
fn gcer_budget_controls_quality() {
    let (d, prepared) = restaurant();
    let pairs = prepared.graph.pairs().to_vec();
    let scored: Vec<(u32, u32, f64)> = pairs
        .iter()
        .map(|p| {
            (
                p.a,
                p.b,
                prepared
                    .corpus
                    .shared_term_count(p.a as usize, p.b as usize) as f64,
            )
        })
        .collect();
    let truth = &prepared.truth;
    let run = |budget: usize| {
        let mut oracle = er_crowd::NoisyOracle::new(|a, b| truth.is_match(a, b), 1.0, 11);
        let out = er_crowd::gcer_resolve(
            d.len(),
            &scored,
            &er_crowd::GcerConfig {
                budget,
                machine_threshold: 0.2,
            },
            &mut oracle,
        );
        (
            evaluate_pairs(out.matches.iter().copied(), truth).f1(),
            out.questions,
        )
    };
    let (f1_big, q_big) = run(10_000);
    let (f1_small, q_small) = run(5);
    assert!(q_small <= 5);
    assert!(q_big >= q_small);
    assert!(
        f1_big >= f1_small,
        "more budget must not hurt: {f1_small} -> {f1_big}"
    );
    assert!(f1_big > 0.9, "{f1_big}");
}

#[test]
fn acd_and_power_resolve_with_fewer_questions_than_crowder() {
    let (d, prepared) = restaurant();
    let pairs = prepared.graph.pairs().to_vec();
    let scored: Vec<(u32, u32, f64)> = pairs
        .iter()
        .map(|p| {
            (
                p.a,
                p.b,
                prepared
                    .corpus
                    .shared_term_count(p.a as usize, p.b as usize) as f64,
            )
        })
        .collect();
    let truth = &prepared.truth;
    let mut o1 = er_crowd::NoisyOracle::new(|a, b| truth.is_match(a, b), 1.0, 5);
    let crowder = crowder_resolve(
        &scored,
        &CrowdErConfig {
            machine_threshold: 0.2,
        },
        &mut o1,
    );
    let mut o2 = er_crowd::NoisyOracle::new(|a, b| truth.is_match(a, b), 1.0, 5);
    let acd = er_crowd::acd_resolve(
        d.len(),
        &scored,
        &er_crowd::AcdConfig {
            machine_threshold: 0.2,
            ..Default::default()
        },
        &mut o2,
    );
    let mut o3 = er_crowd::NoisyOracle::new(|a, b| truth.is_match(a, b), 1.0, 5);
    let power = er_crowd::power_resolve(
        d.len(),
        &scored,
        &er_crowd::PowerConfig {
            machine_threshold: 0.2,
            ..Default::default()
        },
        &mut o3,
    );
    assert!(
        acd.questions <= crowder.questions,
        "{} vs {}",
        acd.questions,
        crowder.questions
    );
    assert!(power.questions <= crowder.questions);
    let f1 = |m: &[(u32, u32)]| evaluate_pairs(m.iter().copied(), truth).f1();
    assert!(f1(&acd.matches) > 0.75, "{}", f1(&acd.matches));
    assert!(f1(&power.matches) > 0.6, "{}", f1(&power.matches));
}

#[test]
fn average_precision_ranks_fusion_probabilities_highly() {
    let (_, prepared) = restaurant();
    let mut cfg = er_core::FusionConfig::default();
    cfg.cliquerank.threads = 1;
    cfg.rounds = 2;
    let outcome = er_core::Resolver::new(cfg).resolve(&prepared.graph);
    let scored: Vec<ScoredPair> = prepared
        .graph
        .pairs()
        .iter()
        .zip(&outcome.matching_probabilities)
        .map(|(p, &score)| ScoredPair {
            a: p.a,
            b: p.b,
            score,
        })
        .collect();
    let ap = er_eval::average_precision(&scored, &prepared.truth);
    assert!(ap > 0.85, "fusion probabilities should rank well: {ap}");
    let curve = er_eval::pr_curve(&scored, &prepared.truth);
    assert!(!curve.is_empty());
}
