//! Steady-state allocation contract of the flattened SimRank iteration
//! loop.
//!
//! After one warm-up run has grown a [`SimRankScratch`]'s three score
//! buffers to the universe's size, re-running `simrank_flat` on the same
//! universe with a serial pool must perform **zero** heap allocations:
//! `prepare` only `clear`s and `resize`s within retained capacity, the
//! serial fast path bypasses the pool's scope bookkeeping entirely, and
//! every slot update is pure index arithmetic over the prebuilt CSR
//! arrays. A counting global allocator pins that contract; any regression
//! (a `Vec` built per iteration, a hash map sneaking back into the inner
//! loop) fails the test rather than silently eating the speedup.
//!
//! This file deliberately holds a single `#[test]`: the counter is
//! process-global, and sibling tests running on other threads would
//! otherwise bleed allocations into the measurement window (same
//! convention as `tests/zero_alloc.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use er_graph::{simrank_flat, SimRankConfig, SimRankScratch, SimRankUniverse};
use er_pool::WorkerPool;

/// Delegates to the system allocator, counting allocation calls while
/// armed. `realloc`/`alloc_zeroed` use the `GlobalAlloc` defaults, which
/// route through `alloc`, so growth is counted too.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// The workspace-wide `#![deny(unsafe_code)]` walls apply to the library
// crates; integration tests are the one place a `GlobalAlloc` shim is
// unavoidable, and the xtask unsafe audit covers `src/` trees only.
// SAFETY: pure delegation to the system allocator plus atomic counter
// bumps; upholds the `GlobalAlloc` contract exactly as `System` does.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout, delegated verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above with this exact layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` while the counter is armed.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// Deterministic mid-size record–term graph (LCG-drawn term sets, skewed
/// toward low ids so common terms create real co-occurrence blocks).
fn synthetic_record_terms(n_records: usize, n_terms: usize, per_record: usize) -> Vec<Vec<u32>> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..n_records)
        .map(|_| {
            let mut terms: Vec<u32> = (0..per_record)
                .map(|_| {
                    let a = next() % n_terms as u32;
                    let b = next() % n_terms as u32;
                    a.min(b)
                })
                .collect();
            terms.sort_unstable();
            terms.dedup();
            terms
        })
        .collect()
}

#[test]
fn simrank_iteration_loop_steady_state_allocates_nothing() {
    let n_terms = 120;
    let owned = synthetic_record_terms(300, n_terms, 5);
    let record_terms: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
    let universe = SimRankUniverse::build(&record_terms, n_terms, None);
    assert!(
        universe.records().len() > 100,
        "synthetic graph too sparse to be a meaningful workload"
    );
    let config = SimRankConfig::default();
    let pool = WorkerPool::new(1);
    let mut scratch = SimRankScratch::default();

    // Warm-up: grows the three score buffers to their high-water marks.
    simrank_flat(&universe, &config, &mut scratch, &pool);
    let baseline: Vec<u64> = scratch
        .record_scores()
        .iter()
        .map(|s| s.to_bits())
        .collect();

    let allocs = count_allocs(|| {
        simrank_flat(&universe, &config, &mut scratch, &pool);
    });
    assert_eq!(
        allocs, 0,
        "steady-state SimRank iteration must not allocate"
    );
    let rerun: Vec<u64> = scratch
        .record_scores()
        .iter()
        .map(|s| s.to_bits())
        .collect();
    assert_eq!(rerun, baseline, "repeat run must be bit-identical");
}
