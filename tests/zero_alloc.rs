//! Steady-state allocation contracts of the hot per-element loops.
//!
//! Two subsystems promise zero heap allocations once warm:
//!
//! * **CliqueRank recurrence** — after a warm-up solve has grown the
//!   scratch arena, the pack buffers, and the sparse-kernel CSR scratch
//!   to their high-water marks, repeating the solve on the same
//!   component must allocate nothing, on both the dense (packed matmul)
//!   and the edgewise sparse path.
//! * **Batch similarity engine** — after one pass over a pair batch has
//!   grown `SimScratch` (DP rows, bit-parallel masks, Monge-Elkan memo
//!   tables, the stamped non-ASCII mask rows), re-scoring the batch on
//!   every kernel must allocate nothing. The string tape build is
//!   excluded: it is a once-per-dataset cost by design.
//!
//! A counting global allocator pins both contracts; any regression (a
//! stray `clone`, a `Vec` built inside the step loop, a mask row dropped
//! and rebuilt per pair) turns into a test failure rather than a silent
//! slowdown.
//!
//! Both contracts are single-threaded by construction (`threads = 1`
//! configs, an always-serial pool), so the counter is **thread-scoped**:
//! only allocations made by the measuring thread count. A process-global
//! counter is not an option — the libtest harness's main thread lazily
//! initializes its `std::sync::mpmc` receive context (an `Arc` plus a
//! waker) on its first blocking `recv`, and that once-per-process
//! allocation lands inside the armed window often enough to flake the
//! gate. The thread-local is `const`-initialized so reading it from
//! inside the allocator can never itself allocate (no lazy TLS init, no
//! destructor registration).
//!
//! This file deliberately holds a single `#[test]`: the counter design
//! assumes one measuring thread at a time.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use er_core::{solve_component_into, BoostMode, CliqueRankConfig, CliqueScratch, Kernel};
use er_graph::{bipartite::PairNode, RecordGraph};
use er_pool::{DispatchPolicy, WorkerPool};
use er_text::{BatchScorer, CorpusBuilder, SimKernel};

/// Delegates to the system allocator, counting allocation calls while
/// armed. `realloc`/`alloc_zeroed` use the `GlobalAlloc` defaults, which
/// route through `alloc`, so growth is counted too.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Whether allocations on *this* thread are being measured.
    /// `const`-initialized: access from the allocator is a plain TLS
    /// read with no lazy-init allocation (`Cell<bool>` has no
    /// destructor to register either).
    static ARMED: Cell<bool> = const { Cell::new(false) };
}

// The workspace-wide `#![deny(unsafe_code)]` walls apply to the library
// crates; this integration test is the one place a `GlobalAlloc` shim is
// unavoidable, and the xtask unsafe audit covers `src/` trees only.
// SAFETY: pure delegation to the system allocator plus atomic counter
// bumps; upholds the `GlobalAlloc` contract exactly as `System` does.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.with(Cell::get) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout, delegated verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above with this exact layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations performed on this thread by `f` while the counter is
/// armed. The measured paths run `threads = 1` / always-serial, so the
/// calling thread performs every allocation under test.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.with(|armed| armed.set(true));
    f();
    ARMED.with(|armed| armed.set(false));
    ALLOCS.load(Ordering::SeqCst)
}

/// One connected component: a 24-node ring with chords, dense enough to
/// engage the packed matmul on the dense path and ragged enough (24 is
/// not a multiple of MR = 8 panels × NR = 4 columns in both directions)
/// to cross tile tails.
fn component_graph() -> RecordGraph {
    let n = 24u32;
    let mut pairs = Vec::new();
    let mut scores = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = j - i;
            if d == 1 || d == 2 || d == 7 {
                pairs.push(PairNode::new(i, j));
                scores.push(0.4 + 0.5 / (1.0 + d as f64));
            }
        }
    }
    RecordGraph::from_pair_scores(n as usize, &pairs, &scores)
}

fn config(kernel: Kernel) -> CliqueRankConfig {
    CliqueRankConfig {
        kernel,
        threads: 1,
        boost: BoostMode::Fixed(0.5),
        ..Default::default()
    }
}

fn assert_steady_state_alloc_free(kernel: Kernel, label: &str) {
    let graph = component_graph();
    let cfg = config(kernel);
    let comps = graph.components();
    let members = comps
        .members
        .iter()
        .find(|m| m.len() >= 2)
        .expect("graph has one non-trivial component");
    let mut local_of = vec![u32::MAX; graph.node_count()];
    for (li, &g) in members.iter().enumerate() {
        local_of[g as usize] = li as u32;
    }
    let mut out = vec![0.0f64; graph.pairs().len()];
    let mut scratch = CliqueScratch::default();

    // Warm-up: grows the arena, pack buffers, and sparse CSR scratch to
    // their high-water marks.
    solve_component_into(&graph, members, &local_of, &cfg, &mut out, &mut scratch);
    let baseline = out.clone();

    let allocs = count_allocs(|| {
        solve_component_into(&graph, members, &local_of, &cfg, &mut out, &mut scratch);
    });
    assert_eq!(
        allocs, 0,
        "{label}: steady-state recurrence must not allocate"
    );
    assert_eq!(out, baseline, "{label}: repeat solve must be bit-identical");
}

/// Warm batch scoring must be alloc-free on every kernel: the tape is
/// built once, the serial pool keeps the whole batch on the caller
/// thread, and one warm-up sweep grows the checked-out `SimScratch` (DP
/// rows, masks, memo tables — including the generation-stamped rows the
/// non-ASCII characters exercise) to its high-water mark.
fn assert_batch_scorer_steady_state() {
    let corpus = CorpusBuilder::new()
        .push_text("fenix argyle 8358 sunset blvd")
        .push_text("fenix 8358 sunset blvd hollywood")
        .push_text("café très münchen 8358")
        .push_text("cafe tres munchen 8358")
        .push_text("grill on the alley 9560 dayton way")
        .push_text("grill alley 9560 dayton")
        .build();
    let scorer = BatchScorer::new(&corpus);
    let idx: Vec<(u32, u32)> = (0..corpus.len() as u32)
        .flat_map(|a| ((a + 1)..corpus.len() as u32).map(move |b| (a, b)))
        .collect();
    let pool = WorkerPool::with_policy(1, DispatchPolicy::always_serial());
    let mut out = vec![0.0f64; idx.len()];

    // Warm-up: every kernel touches its own scratch regions.
    let mut baseline = Vec::new();
    for kernel in SimKernel::ALL {
        scorer.score_into(kernel, &idx, &mut out, &pool);
        baseline.push(out.clone());
    }

    for (kernel, expect) in SimKernel::ALL.into_iter().zip(&baseline) {
        let allocs = count_allocs(|| {
            scorer.score_into(kernel, &idx, &mut out, &pool);
        });
        assert_eq!(
            allocs,
            0,
            "{}: warm batch scoring must not allocate",
            kernel.name()
        );
        assert_eq!(
            &out,
            expect,
            "{}: repeat batch must be bit-identical",
            kernel.name()
        );
    }
}

#[test]
fn cliquerank_recurrence_steady_state_allocates_nothing() {
    assert_steady_state_alloc_free(Kernel::Dense, "dense packed path");
    assert_steady_state_alloc_free(Kernel::Sparse, "edgewise sparse path");
    assert_batch_scorer_steady_state();
}
