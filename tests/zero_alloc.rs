//! Steady-state allocation contract of the CliqueRank recurrence.
//!
//! After a warm-up solve has grown the scratch arena, the pack buffers,
//! and the sparse-kernel CSR scratch to their high-water marks, repeating
//! the solve on the same component must perform **zero** heap
//! allocations — both on the dense (packed matmul) path and on the
//! edgewise sparse path. A counting global allocator pins that contract;
//! any regression (a stray `clone`, a `Vec` built inside the step loop, a
//! matrix allocated per iteration) turns into a test failure rather than
//! a silent slowdown.
//!
//! This file deliberately holds a single `#[test]`: the counter is
//! process-global, and sibling tests running on other threads would
//! otherwise bleed allocations into the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use er_core::{solve_component_into, BoostMode, CliqueRankConfig, CliqueScratch, Kernel};
use er_graph::{bipartite::PairNode, RecordGraph};

/// Delegates to the system allocator, counting allocation calls while
/// armed. `realloc`/`alloc_zeroed` use the `GlobalAlloc` defaults, which
/// route through `alloc`, so growth is counted too.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// The workspace-wide `#![deny(unsafe_code)]` walls apply to the library
// crates; this integration test is the one place a `GlobalAlloc` shim is
// unavoidable, and the xtask unsafe audit covers `src/` trees only.
// SAFETY: pure delegation to the system allocator plus atomic counter
// bumps; upholds the `GlobalAlloc` contract exactly as `System` does.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout, delegated verbatim to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `alloc` above with this exact layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` while the counter is armed.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// One connected component: a 24-node ring with chords, dense enough to
/// engage the packed matmul on the dense path and ragged enough (24 is
/// not a multiple of MR = 8 panels × NR = 4 columns in both directions)
/// to cross tile tails.
fn component_graph() -> RecordGraph {
    let n = 24u32;
    let mut pairs = Vec::new();
    let mut scores = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = j - i;
            if d == 1 || d == 2 || d == 7 {
                pairs.push(PairNode::new(i, j));
                scores.push(0.4 + 0.5 / (1.0 + d as f64));
            }
        }
    }
    RecordGraph::from_pair_scores(n as usize, &pairs, &scores)
}

fn config(kernel: Kernel) -> CliqueRankConfig {
    CliqueRankConfig {
        kernel,
        threads: 1,
        boost: BoostMode::Fixed(0.5),
        ..Default::default()
    }
}

fn assert_steady_state_alloc_free(kernel: Kernel, label: &str) {
    let graph = component_graph();
    let cfg = config(kernel);
    let comps = graph.components();
    let members = comps
        .members
        .iter()
        .find(|m| m.len() >= 2)
        .expect("graph has one non-trivial component");
    let mut local_of = vec![u32::MAX; graph.node_count()];
    for (li, &g) in members.iter().enumerate() {
        local_of[g as usize] = li as u32;
    }
    let mut out = vec![0.0f64; graph.pairs().len()];
    let mut scratch = CliqueScratch::default();

    // Warm-up: grows the arena, pack buffers, and sparse CSR scratch to
    // their high-water marks.
    solve_component_into(&graph, members, &local_of, &cfg, &mut out, &mut scratch);
    let baseline = out.clone();

    let allocs = count_allocs(|| {
        solve_component_into(&graph, members, &local_of, &cfg, &mut out, &mut scratch);
    });
    assert_eq!(
        allocs, 0,
        "{label}: steady-state recurrence must not allocate"
    );
    assert_eq!(out, baseline, "{label}: repeat solve must be bit-identical");
}

#[test]
fn cliquerank_recurrence_steady_state_allocates_nothing() {
    assert_steady_state_alloc_free(Kernel::Dense, "dense packed path");
    assert_steady_state_alloc_free(Kernel::Sparse, "edgewise sparse path");
}
