//! The serving engine's core contract: incremental resolution is
//! **bit-identical** to a from-scratch batch run over the same record
//! prefix — at every prefix, at 1/2/8 threads, and on both sides of the
//! serial/parallel dispatch cutover.
//!
//! The chain underneath: the streaming corpus materializes exactly the
//! batch corpus (er-text `prop_streaming`), the cached blocking paths
//! emit exactly the batch candidate lists, ITER re-runs whole, and the
//! exact CliqueRank cache only replays component solutions whose full
//! content (members, neighborhoods, similarities, config) hashes
//! identically — so every replayed component is bitwise what a cold
//! solve would produce, by induction across reinforcement rounds.

use er_pool::DispatchPolicy;
use er_serve::{resolve_batch, ServeConfig, ServeEngine};
use er_text::BlockingStrategy;
use proptest::prelude::*;

fn serve_config(threads: usize, dispatch: DispatchPolicy) -> ServeConfig {
    let mut config = ServeConfig {
        // Generated texts are tiny; a permissive frequent-term cap keeps
        // enough terms for candidates to exist (the batch path uses the
        // identical cap, so the comparison is still exact).
        max_df_fraction: 0.6,
        ..ServeConfig::default()
    };
    config.fusion.threads = threads;
    config.fusion.dispatch = dispatch;
    config.fusion.rounds = 2;
    config
}

fn record_texts() -> impl Strategy<Value = Vec<String>> {
    // Clustered near-duplicates: a small pool of base tokens yields
    // overlapping term sets, moving df caps, and multi-record
    // components — the regime where incremental caching can go wrong.
    proptest::collection::vec("[a-h]{2,4}( [a-h]{2,4}){1,5}", 2..14)
}

proptest! {
    // Each case runs the full prefix ladder; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_equals_batch_across_threads_and_dispatch(texts in record_texts()) {
        for (threads, dispatch) in [
            (1usize, DispatchPolicy::always_serial()),
            (2, DispatchPolicy::always_parallel()),
            (8, DispatchPolicy::always_parallel()),
        ] {
            let config = serve_config(threads, dispatch);
            let mut engine = ServeEngine::new(config);
            for (i, t) in texts.iter().enumerate() {
                engine.ingest(t);
                let snap = engine.resolve();
                let batch = resolve_batch(texts[..=i].iter().cloned(), engine.config());
                prop_assert!(
                    snap.bitwise_eq(&batch),
                    "threads={threads} prefix={i}"
                );
            }
        }
    }

    #[test]
    fn incremental_equals_batch_under_meta_blocking(texts in record_texts()) {
        let mut config = serve_config(2, DispatchPolicy::always_parallel());
        config.strategy = BlockingStrategy::meta_default();
        let mut engine = ServeEngine::new(config);
        for (i, t) in texts.iter().enumerate() {
            engine.ingest(t);
            let snap = engine.resolve();
            let batch = resolve_batch(texts[..=i].iter().cloned(), engine.config());
            prop_assert!(snap.bitwise_eq(&batch), "prefix={i}");
        }
    }
}

#[test]
fn census_stream_equals_batch_with_micro_batches() {
    // A realistic stream: the census generator's duplicate-heavy
    // records, ingested in uneven micro-batches with a resolve after
    // each, against the batch reference — across thread counts and
    // dispatch policies. All runs must agree bitwise with each other
    // (thread/dispatch invariance) and with the batch run (incremental
    // invariance).
    let dataset = er_datasets::generators::census::generate(&er_datasets::CensusConfig {
        records: 120,
        duplicate_rate: 0.3,
        seed: 0xC0FFEE,
    });
    let texts: Vec<String> = dataset.texts().map(str::to_owned).collect();
    let chunks = [7usize, 1, 23, 40, 5, 44];
    let mut reference: Option<Vec<u64>> = None;
    for (threads, dispatch) in [
        (1usize, DispatchPolicy::always_serial()),
        (2, DispatchPolicy::always_parallel()),
        (8, DispatchPolicy::always_parallel()),
    ] {
        let config = serve_config(threads, dispatch);
        let mut engine = ServeEngine::new(config);
        let mut offset = 0usize;
        for &chunk in &chunks {
            let end = (offset + chunk).min(texts.len());
            engine.ingest_batch(texts[offset..end].iter().map(String::as_str));
            offset = end;
            let snap = engine.resolve();
            let batch = resolve_batch(texts[..end].iter().cloned(), engine.config());
            assert!(snap.bitwise_eq(&batch), "threads={threads} records={end}");
        }
        assert_eq!(offset, texts.len(), "chunks must cover the dataset");
        assert!(engine.cache().hits() > 0, "warm components must replay");
        let bits: Vec<u64> = engine
            .snapshot()
            .probabilities()
            .iter()
            .map(|p| p.to_bits())
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "threads={threads}"),
        }
    }
}
