//! Offline vendored subset of the `serde` API.
//!
//! The workspace derives `Serialize` / `Deserialize` on its data model
//! but never serializes through serde (machine-readable output is
//! hand-written JSON), so marker traits plus no-op derives are all that
//! is needed to keep the annotations compiling in hermetic builds.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
