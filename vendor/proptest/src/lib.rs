//! Offline vendored subset of the `proptest` API.
//!
//! Hermetic builds cannot fetch the real crate, so this reimplements the
//! surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`];
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//!   [`strategy::Just`], numeric range strategies, tuple strategies, and
//!   `&str` regex-literal string strategies (character classes, groups,
//!   and `{m,n}` repetition — the constructs the tests use);
//! * [`collection::vec`], [`collection::btree_set`],
//!   [`collection::btree_map`];
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! its case number and seed so it can be replayed), and the default case
//! count is 64 (set `PROPTEST_CASES` to override).

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    //! Everything the property tests import.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Runs `cases` generated inputs through `body`. Implementation detail of
/// [`proptest!`]; public because the macro expands in caller crates.
pub fn run_cases(test_name: &str, cases: u32, mut body: impl FnMut(&mut test_runner::TestRng)) {
    for case in 0..cases {
        let seed = test_runner::case_seed(test_name, case);
        let mut rng = test_runner::TestRng::new(seed);
        body(&mut rng);
    }
}

/// The `proptest!` block macro: wraps `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), config.cases, |prop_rng| {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), prop_rng);
                    )+
                    $body
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}
