//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification: an exact count or a half-open range, mirroring
/// proptest's `Into<SizeRange>` argument.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        if self.max_exclusive <= self.min + 1 {
            return self.min;
        }
        self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

/// Strategy for `Vec<V>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<V>`. Duplicate draws collapse, so the set may
/// be smaller than the drawn size (upstream retries toward the requested
/// size; no test in this workspace depends on exact sizes).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>`; duplicate keys collapse as in
/// [`btree_set`].
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = vec(0u32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(0u32..5, 4usize).generate(&mut rng);
        assert_eq!(exact.len(), 4);
    }

    #[test]
    fn set_and_map_generate_ordered_unique_keys() {
        let mut rng = TestRng::new(4);
        let s = btree_set((0u32..8, 0u32..8), 0..20).generate(&mut rng);
        assert!(s.len() <= 20);
        let m = btree_map(0u32..6, 0.0f64..1.0, 1..10).generate(&mut rng);
        for (&k, &v) in &m {
            assert!(k < 6 && (0.0..1.0).contains(&v));
        }
    }
}
