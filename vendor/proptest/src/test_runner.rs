//! Case configuration and the deterministic test RNG.

/// Per-test configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Deterministic seed for one (test, case) pair: FNV-1a over the test
/// name, mixed with the case index. Stable across runs and platforms so
/// failures replay exactly.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ ((case as u64) << 32 | case as u64)
}

/// SplitMix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..span` (`span` must be non-zero).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
