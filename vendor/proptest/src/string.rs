//! Regex-literal string strategies.
//!
//! Upstream proptest treats a `&str` strategy as a regular expression and
//! generates matching strings. This subset parses the constructs the
//! workspace's tests use: literal characters, character classes with
//! ranges (`[a-z0-9]`, `[a-z ]`), groups `(...)`, and `{m,n}` counted
//! repetition. Anything else is rejected at generation time with a panic
//! naming the unsupported construct.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// One parsed regex element plus its repetition bounds.
struct Atom {
    kind: AtomKind,
    min: u32,
    max: u32,
}

enum AtomKind {
    Literal(char),
    /// Flattened alternatives of a character class.
    Class(Vec<char>),
    Group(Vec<Atom>),
}

fn parse_sequence(chars: &mut std::iter::Peekable<std::str::Chars>, in_group: bool) -> Vec<Atom> {
    let mut atoms = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            assert!(in_group, "unsupported regex construct: unmatched ')'");
            chars.next();
            return atoms;
        }
        chars.next();
        let kind = match c {
            '[' => AtomKind::Class(parse_class(chars)),
            '(' => AtomKind::Group(parse_sequence(chars, true)),
            '.' | '*' | '+' | '?' | '|' | '^' | '$' => {
                panic!("unsupported regex construct: '{c}'")
            }
            '\\' => AtomKind::Literal(chars.next().expect("dangling escape")),
            _ => AtomKind::Literal(c),
        };
        let (min, max) = parse_repeat(chars);
        atoms.push(Atom { kind, min, max });
    }
    assert!(!in_group, "unsupported regex construct: unclosed '('");
    atoms
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
    let mut alts = Vec::new();
    loop {
        let c = chars.next().expect("unclosed character class");
        match c {
            ']' => break,
            '^' if alts.is_empty() => panic!("unsupported regex construct: negated class"),
            _ => {
                if chars.peek() == Some(&'-') {
                    let mut look = chars.clone();
                    look.next();
                    if look.peek().is_some_and(|&e| e != ']') {
                        chars.next();
                        let end = chars.next().unwrap();
                        assert!(c <= end, "descending class range {c}-{end}");
                        alts.extend(c..=end);
                        continue;
                    }
                }
                alts.push(c);
            }
        }
    }
    assert!(!alts.is_empty(), "empty character class");
    alts
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars>) -> (u32, u32) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    loop {
        let c = chars.next().expect("unclosed '{m,n}' repetition");
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    let parse = |s: &str| {
        s.trim()
            .parse::<u32>()
            .expect("non-numeric repetition bound")
    };
    match spec.split_once(',') {
        Some((lo, hi)) => {
            let (lo, hi) = (parse(lo), parse(hi));
            assert!(lo <= hi, "descending repetition bounds {lo},{hi}");
            (lo, hi)
        }
        None => {
            let n = parse(&spec);
            (n, n)
        }
    }
}

fn generate_atoms(atoms: &[Atom], rng: &mut TestRng, out: &mut String) {
    for atom in atoms {
        let reps = atom.min
            + if atom.max > atom.min {
                rng.below((atom.max - atom.min + 1) as u64) as u32
            } else {
                0
            };
        for _ in 0..reps {
            match &atom.kind {
                AtomKind::Literal(c) => out.push(*c),
                AtomKind::Class(alts) => out.push(alts[rng.below(alts.len() as u64) as usize]),
                AtomKind::Group(inner) => generate_atoms(inner, rng, out),
            }
        }
    }
}

/// `str` patterns are regex-literal strategies; `&str` works through the
/// blanket `impl Strategy for &S`.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_sequence(&mut self.chars().peekable(), false);
        let mut out = String::new();
        generate_atoms(&atoms, rng, &mut out);
        out
    }
}

/// `String` patterns behave like their `str` slice.
impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(pattern: &str, rng: &mut TestRng) -> String {
        Strategy::generate(pattern, rng)
    }

    #[test]
    fn class_with_ranges_and_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = gen("[a-z0-9]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn class_with_literal_space() {
        let mut rng = TestRng::new(10);
        for _ in 0..200 {
            let s = gen("[a-z ]{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));
        }
    }

    #[test]
    fn group_repetition() {
        let mut rng = TestRng::new(11);
        let mut seen_multi = false;
        for _ in 0..200 {
            let s = gen("[a-d]( [a-d]){0,4}", &mut rng);
            let words: Vec<&str> = s.split(' ').collect();
            assert!((1..=5).contains(&words.len()));
            assert!(words
                .iter()
                .all(|w| w.len() == 1 && ('a'..='d').contains(&w.chars().next().unwrap())));
            seen_multi |= words.len() > 1;
        }
        assert!(seen_multi);
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::new(12);
        assert_eq!(gen("abc", &mut rng), "abc");
        assert_eq!(gen("[a]{3}", &mut rng), "aaa");
        assert_eq!(gen(r"a\[b", &mut rng), "a[b");
    }

    #[test]
    #[should_panic(expected = "unsupported regex construct")]
    fn unsupported_construct_panics() {
        let mut rng = TestRng::new(13);
        gen("a+", &mut rng);
    }
}
