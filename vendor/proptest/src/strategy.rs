//! The `Strategy` trait and core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of type `Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy behind a shared reference is still a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $ty
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_combinators_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let (a, b) = (0u32..4, Just("x")).generate(&mut rng);
            assert!(a < 4);
            assert_eq!(b, "x");
            let doubled = (0u32..10).prop_map(|x| x * 2).generate(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 20);
            let dependent = (1usize..4)
                .prop_flat_map(|n| (0usize..n, Just(n)))
                .generate(&mut rng);
            assert!(dependent.0 < dependent.1);
        }
    }
}
