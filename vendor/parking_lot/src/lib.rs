//! Offline vendored subset of the `parking_lot` API.
//!
//! Thin wrappers over `std::sync` primitives with `parking_lot`'s
//! poison-free signatures (`lock()` returns the guard directly). A
//! poisoned std lock — only possible after a panic while holding the
//! guard — is recovered rather than propagated, matching `parking_lot`'s
//! semantics of not tracking poisoning at all.

use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or the timeout elapses; returns `true` if it
    /// timed out (parking_lot's `WaitTimeoutResult::timed_out`).
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        timed_out
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Runs `f` on the owned guard, then writes the returned guard back.
/// Std's condvar consumes and returns guards by value; parking_lot's
/// takes `&mut` — this adapter bridges the two. The `ManuallyDrop` dance
/// is confined to this function and both reads are paired with exactly
/// one write.
fn take_guard<T, F>(slot: &mut MutexGuard<'_, T>, f: F)
where
    F: for<'g> FnOnce(std::sync::MutexGuard<'g, T>) -> std::sync::MutexGuard<'g, T>,
{
    use std::mem::ManuallyDrop;

    /// While `slot` holds duplicated bits, an unwind through `f` would
    /// double-drop the guard; `f` (std condvar waits with poison
    /// recovery) never panics, and this bomb turns any future violation
    /// of that invariant into an abort instead of UB.
    struct Bomb;
    impl Drop for Bomb {
        fn drop(&mut self) {
            std::process::abort();
        }
    }

    // SAFETY: `owned` is the sole user of the guard while `slot` is
    // treated as uninitialized; the write below restores `slot` before
    // any exit path (panics abort via `Bomb`).
    unsafe {
        let owned = std::ptr::read(slot);
        let bomb = Bomb;
        let mut owned = ManuallyDrop::new(f(owned));
        std::mem::forget(bomb);
        std::ptr::write(slot, ManuallyDrop::take(&mut owned));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let state = Arc::new((Mutex::new(0usize), Condvar::new()));
        let clone = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*clone;
            *lock.lock() = 7;
            cv.notify_all();
        });
        let (lock, cv) = &*state;
        let mut guard = lock.lock();
        while *guard != 7 {
            cv.wait(&mut guard);
        }
        drop(guard);
        handle.join().unwrap();
        assert_eq!(*state.0.lock(), 7);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let lock = RwLock::new(5);
        let a = lock.read();
        let b = lock.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
