//! Offline vendored subset of the `rand` 0.9 API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the handful of `rand` items it uses are reimplemented here
//! and wired in through a `path` dependency (see the root `Cargo.toml`).
//! Only what the workspace calls is provided:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the algorithm `rand` 0.9 uses for
//!   `SmallRng` on 64-bit targets), seeded via SplitMix64.
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].
//! * [`Rng::random_range`] over integer and float ranges, inclusive or
//!   half-open.
//!
//! The streams are *not* guaranteed to be bit-identical to upstream
//! `rand`; every consumer in this workspace only relies on seeded
//! determinism and statistical quality, both of which hold.

pub mod rngs;

/// Core RNG interface: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion —
    /// the same convention upstream `rand` uses, so nearby seeds still
    /// produce uncorrelated states.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        f64_from_bits(self.next_u64())
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// SplitMix64 step — used both for seeding and as a standalone mixer.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline]
fn f64_from_bits(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type uniform sampling supports; mirrors
/// `rand::distr::uniform::SampleUniform`. Implemented for the primitive
/// integers and floats. The single blanket [`SampleRange`] impl below is
/// keyed on this trait so type inference can unify a range's element type
/// with `random_range`'s result type (separate per-type range impls break
/// inference for calls like `x + rng.random_range(-0.2..0.2)`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`. Caller guarantees `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`. Caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range that can be sampled uniformly; mirrors
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_int_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $ty, hi: $ty, rng: &mut R) -> $ty {
                let span = (hi as i128 - lo as i128) as u64;
                let offset = mul_shift(rng.next_u64(), span);
                (lo as i128 + offset as i128) as $ty
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $ty, hi: $ty, rng: &mut R) -> $ty {
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                let offset = mul_shift(rng.next_u64(), span + 1);
                (lo as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Widening multiply-shift: maps a uniform `u64` onto `0..span` with bias
/// below `span / 2^64` — far beneath anything the statistical tests in
/// this workspace can observe.
#[inline]
fn mul_shift(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_float_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $ty, hi: $ty, rng: &mut R) -> $ty {
                let unit = f64_from_bits(rng.next_u64()) as $ty;
                lo + (hi - lo) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $ty, hi: $ty, rng: &mut R) -> $ty {
                // [0, 1) is close enough to [0, 1] at double precision;
                // upstream rand's inclusive float ranges are similar.
                <$ty>::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let v: u32 = rng.random_range(3..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn float_range_uniformish() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _: u32 = rng.random_range(5..5);
    }
}
