//! Offline vendored subset of the `crossbeam` API.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are used by this
//! workspace; they are implemented directly on top of
//! `std::thread::scope`, which provides the same structured-concurrency
//! guarantee (all spawned threads join before the scope returns).

pub mod thread {
    use std::any::Any;

    /// Result of joining a scoped thread (or the scope itself).
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle; spawned closures receive a reference so they can
    /// spawn further scoped work.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope, so
        /// nested spawns are possible (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns once every spawned thread has finished.
    ///
    /// Unlike upstream crossbeam (which collects panics of unjoined
    /// children into the `Err` variant), a panic in an unjoined child
    /// propagates out of `scope` directly — the stricter behaviour of
    /// `std::thread::scope`. Every caller in this workspace immediately
    /// `.expect()`s the result, so the observable outcome is identical.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_works() {
        let out = thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
