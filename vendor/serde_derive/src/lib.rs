//! Offline vendored no-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace only *annotates* types with these derives (no code path
//! serializes anything — machine-readable output is hand-written JSON),
//! so the macros expand to nothing. If real serialization is ever needed,
//! replace the `vendor/serde*` crates with the upstream ones.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
