//! Offline vendored subset of the `criterion` API.
//!
//! A minimal measure-and-print harness with criterion's calling
//! conventions (`criterion_group!` / `criterion_main!`, `bench_function`,
//! `iter`, `iter_batched`). No warmup modeling, outlier analysis, or
//! HTML reports — each benchmark runs `sample_size` timed samples and
//! prints the minimum, median, and mean wall time. The minimum is the
//! most robust single number on noisy shared machines; comparisons in
//! this workspace read the median.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-value helper re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup; all variants behave identically
/// here (setup always runs once per measured call, outside the timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver; collects configuration and runs benchmark closures.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one sample");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named group; benchmark ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_benchmark(&full, self.criterion.sample_size, f);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; records one timed sample per call.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(std_black_box(out));
    }

    /// Times `routine` on an input built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed = start.elapsed();
        drop(std_black_box(out));
    }
}

fn run_benchmark<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // One untimed warmup to populate caches and lazy statics.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    times.sort_unstable();
    let min = times[0];
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{id:<40} min {:>12}  median {:>12}  mean {:>12}  ({samples} samples)",
        fmt(min),
        fmt(median),
        fmt(mean)
    );
}

fn fmt(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} us", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group: either criterion's configured form
/// (`name = ...; config = ...; targets = ...`) or the simple list form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
