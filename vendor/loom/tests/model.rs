//! Self-tests for the vendored loom model checker.

use std::sync::Mutex as RealMutex;

use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

#[test]
fn mutex_counter_is_race_free() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    *counter.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

#[test]
fn exploration_finds_the_lost_update() {
    // Read-modify-write split across two lock acquisitions: depending on
    // the interleaving the final value is 1 (lost update) or 2. The
    // explorer must surface both.
    let seen = RealMutex::new(std::collections::BTreeSet::new());
    loom::model(|| {
        let cell = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let v = *cell.lock().unwrap();
                    *cell.lock().unwrap() = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let last = *cell.lock().unwrap();
        seen.lock().unwrap().insert(last);
    });
    let seen = seen.into_inner().unwrap();
    assert!(
        seen.contains(&1) && seen.contains(&2),
        "explorer missed an interleaving; outcomes seen: {seen:?}"
    );
}

#[test]
fn condvar_handoff_completes() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (flag, cv) = &*pair;
                let mut ready = flag.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            })
        };
        let (flag, cv) = &*pair;
        *flag.lock().unwrap() = true;
        cv.notify_one();
        waiter.join().unwrap();
    });
}

#[test]
fn wait_timeout_rescues_an_unnotified_sleeper() {
    // Nobody ever notifies: the model must wake the sleeper via the
    // simulated timeout instead of reporting a deadlock.
    loom::model(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let (lock, cv) = &*pair;
        let guard = lock.lock().unwrap();
        let (_guard, timeout) = cv
            .wait_timeout(guard, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(timeout.timed_out());
    });
}

#[test]
fn join_reports_the_panic_payload() {
    loom::model(|| {
        let h = thread::spawn(|| panic!("boom in model thread"));
        let err = h.join().unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in model thread");
    });
}

#[test]
fn yield_creates_schedules_but_terminates() {
    let runs = RealMutex::new(0u32);
    loom::model(|| {
        let h = thread::spawn(loom::thread::yield_now);
        thread::yield_now();
        h.join().unwrap();
        *runs.lock().unwrap() += 1;
    });
    // More than one distinct schedule must have been explored.
    assert!(*runs.lock().unwrap() > 1);
}
