//! Offline vendored subset of the `loom` concurrency model-checker API.
//!
//! [`model`] runs a closure many times, exploring the distinct thread
//! interleavings of every [`sync`] and [`thread`] operation inside it via
//! depth-first search over scheduling decisions. Only one model thread
//! executes at a time (baton passing over real OS threads), so the
//! exploration is deterministic and replayable; a decision path that
//! fails is printed so the interleaving can be reproduced.
//!
//! # Scope of the model (honest differences from the real `loom`)
//!
//! * **Sequential consistency only.** Scheduling points are mutex
//!   lock/unlock, condvar wait/notify, spawn/join and yield. There is no
//!   C11 weak-memory simulation — sound for code whose cross-thread
//!   communication goes exclusively through the [`sync`] types (like
//!   `er-pool`, which shares state only under `Mutex`/`Condvar`).
//! * **Bounded exploration.** The search is exhaustive up to a
//!   preemption bound (default 3, `LOOM_MAX_PREEMPTIONS`): at most that
//!   many involuntary context switches per execution. Forced switches —
//!   a thread blocking — are always explored. This is the classic
//!   CHESS-style bound: almost all real concurrency bugs manifest within
//!   two or three preemptions.
//! * **Timeouts fire only when nothing else can run.** A
//!   `wait_timeout` sleeper is woken (with `timed_out() == true`) when
//!   every other thread is blocked — modeling "the timeout eventually
//!   fires" without exploding the schedule space. A genuine deadlock
//!   (no runnable thread, no timed sleeper) panics with the decision
//!   path.
//! * `notify_one` wakes the longest-waiting thread (FIFO). Real condvars
//!   may wake any waiter; FIFO is one valid refinement.

pub mod model;
mod rt;
pub mod sync;
pub mod thread;

pub use model::{model, Builder};
