//! Model-aware replacements for `std::sync` primitives.
//!
//! API shape follows `std`: `lock()` returns a `LockResult` (always
//! `Ok` — the model recovers poisoning internally), `Condvar::wait`
//! consumes and returns the guard.

use std::cell::UnsafeCell;
use std::fmt;
use std::sync::{LockResult, OnceLock};
use std::time::Duration;

use crate::rt;

pub use std::sync::Arc;

/// A model-checked mutual-exclusion lock.
pub struct Mutex<T> {
    id: OnceLock<usize>,
    data: UnsafeCell<T>,
}

// SAFETY: the scheduler runs exactly one model thread at a time and
// grants access to `data` only to the thread it recorded as owner, so
// sharing the cell across threads cannot produce concurrent access.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — all access to `data` is serialized by the model
// scheduler's ownership protocol.
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a new model mutex.
    pub const fn new(data: T) -> Self {
        Self {
            id: OnceLock::new(),
            data: UnsafeCell::new(data),
        }
    }

    fn id(&self) -> usize {
        *self
            .id
            .get_or_init(|| rt::with(|exec, _| exec.mutex_create()))
    }

    /// Acquires the lock, blocking (in model time) until it is free.
    /// Never returns `Err`: the model absorbs poisoning.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let id = self.id();
        rt::with(|exec, me| exec.mutex_lock(me, id));
        Ok(MutexGuard { mutex: self })
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Scoped ownership of a [`Mutex`]. Releasing it is a scheduling point.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> MutexGuard<'_, T> {
    fn mutex_id(&self) -> usize {
        self.mutex.id()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while the scheduler records the
        // current thread as owner, so no other thread can be granted
        // access to the cell for the guard's lifetime.
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive ownership is guaranteed by
        // the scheduler for the guard's lifetime.
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let id = self.mutex_id();
        rt::with(|exec, me| exec.mutex_unlock(me, id));
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Whether a [`Condvar::wait_timeout`] returned because the simulated
/// timeout fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// `true` if the wake came from the timeout rather than a notify.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A model-checked condition variable.
#[derive(Default)]
pub struct Condvar {
    id: OnceLock<usize>,
}

impl Condvar {
    /// Creates a new model condvar.
    pub const fn new() -> Self {
        Self {
            id: OnceLock::new(),
        }
    }

    fn id(&self) -> usize {
        *self
            .id
            .get_or_init(|| rt::with(|exec, _| exec.condvar_create()))
    }

    /// Releases the guard's mutex, sleeps until notified, reacquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (cv, mid) = (self.id(), guard.mutex_id());
        rt::with(|exec, me| exec.condvar_wait(me, cv, mid, false));
        // The scheduler released and reacquired ownership on our behalf;
        // the guard object itself never dropped, so it stays valid.
        Ok(guard)
    }

    /// Like [`wait`](Self::wait) but also wakes when the simulated
    /// timeout fires — which the model only does once every other thread
    /// is blocked. The duration is ignored.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (cv, mid) = (self.id(), guard.mutex_id());
        let timed_out = rt::with(|exec, me| exec.condvar_wait(me, cv, mid, true));
        Ok((guard, WaitTimeoutResult(timed_out)))
    }

    /// Wakes the longest-waiting thread, if any.
    pub fn notify_one(&self) {
        let cv = self.id();
        rt::with(|exec, me| exec.condvar_notify(me, cv, false));
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        let cv = self.id();
        rt::with(|exec, me| exec.condvar_notify(me, cv, true));
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
