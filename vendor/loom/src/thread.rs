//! Model-aware replacements for `std::thread`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use crate::rt;

/// Handle to a model thread. Mirrors `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    id: rt::ThreadId,
    result: Arc<Mutex<Option<std::thread::Result<T>>>>,
}

/// Spawns a model thread. The closure only starts running once the
/// scheduler hands it the baton.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let id = rt::with(|exec, me| {
        exec.spawn_thread(me, move || {
            let outcome = catch_unwind(AssertUnwindSafe(f));
            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
        })
    });
    JoinHandle { id, result }
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes; returns its
    /// result, or `Err` with the panic payload if it panicked.
    pub fn join(self) -> std::thread::Result<T> {
        rt::with(|exec, me| exec.join_thread(me, self.id));
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("loom: joined thread produced no result")
    }
}

/// A voluntary scheduling point.
pub fn yield_now() {
    rt::with(|exec, me| exec.reschedule(me, false));
}
