//! The exploration driver: depth-first search over decision paths.

use crate::rt::{self, Branch};

/// Configures and runs an exploration. Mirrors `loom::model::Builder`.
#[derive(Debug, Clone)]
pub struct Builder {
    /// CHESS-style bound on involuntary context switches per execution.
    /// Overridable with `LOOM_MAX_PREEMPTIONS`.
    pub max_preemptions: usize,
    /// Hard cap on explored executions — a runaway backstop, not a
    /// sampling knob. Overridable with `LOOM_MAX_ITERATIONS`.
    pub max_iterations: usize,
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            max_preemptions: env_usize("LOOM_MAX_PREEMPTIONS").unwrap_or(3),
            max_iterations: env_usize("LOOM_MAX_ITERATIONS").unwrap_or(500_000),
        }
    }
}

impl Builder {
    /// Creates a builder with the default bounds.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Explores every interleaving of `f` up to the configured bounds.
    /// Panics (with the failing decision path on stderr) on the first
    /// execution that fails.
    pub fn check<F: Fn()>(&self, f: F) {
        let mut path: Vec<Branch> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            assert!(
                iterations <= self.max_iterations,
                "loom: exceeded {} iterations; raise LOOM_MAX_ITERATIONS or \
                 shrink the model",
                self.max_iterations
            );
            path = rt::run_execution(&f, path, self.max_preemptions);
            // Backtrack: drop exhausted tail branches, advance the last
            // one that still has an unexplored choice.
            while path.last().is_some_and(|b| b.taken + 1 >= b.choices.len()) {
                path.pop();
            }
            match path.last_mut() {
                Some(b) => b.taken += 1,
                None => break,
            }
        }
        if std::env::var_os("LOOM_LOG").is_some() {
            eprintln!("loom: explored {iterations} executions");
        }
    }
}

/// Explores every interleaving of `f` with the default bounds.
pub fn model<F: Fn()>(f: F) {
    Builder::default().check(f);
}
