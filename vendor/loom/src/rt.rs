//! The execution scheduler: baton-passing over real OS threads.
//!
//! Exactly one model thread runs at any moment. Every synchronization
//! operation funnels into [`Execution::reschedule`], the single
//! scheduling point, where the next thread is chosen by replaying the
//! current decision path and extending it depth-first. Because only the
//! scheduled thread executes user code, a sequentially-consistent
//! interleaving semantics falls out by construction and executions are
//! exactly replayable from their decision path.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, PoisonError};

pub(crate) type ThreadId = usize;

/// One recorded scheduling decision: which runnable thread was chosen
/// out of the candidates at a point where more than one could run.
#[derive(Clone, Debug)]
pub(crate) struct Branch {
    pub(crate) choices: Vec<ThreadId>,
    pub(crate) taken: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked,
    Finished,
}

struct MutexState {
    owner: Option<ThreadId>,
    waiters: Vec<ThreadId>,
}

struct CvState {
    /// `(thread, timed)` — timed waiters are eligible for the
    /// timeout-rescue wake when the system would otherwise deadlock.
    waiters: Vec<(ThreadId, bool)>,
}

struct State {
    status: Vec<Status>,
    current: ThreadId,
    path: Vec<Branch>,
    cursor: usize,
    preemptions: usize,
    max_preemptions: usize,
    /// Set when the execution is tearing down after a panic; scheduling
    /// points raise it in threads that are not already unwinding.
    abort: Option<String>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CvState>,
    joiners: Vec<Vec<ThreadId>>,
    timed_out: Vec<bool>,
    os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
}

pub(crate) struct Execution {
    state: OsMutex<State>,
    cv: OsCondvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, ThreadId)>> = const { RefCell::new(None) };
}

/// Runs `f` with the calling thread's execution context. Panics outside
/// [`crate::model`].
pub(crate) fn with<R>(f: impl FnOnce(&Arc<Execution>, ThreadId) -> R) -> R {
    CTX.with(|c| {
        let borrow = c.borrow();
        let (exec, me) = borrow
            .as_ref()
            .expect("loom sync types may only be used inside loom::model");
        f(exec, *me)
    })
}

fn lock_state(exec: &Execution) -> OsGuard<'_, State> {
    // A panicking model thread may poison the OS mutex; the scheduler
    // state stays consistent (mutations are all panic-free), so recover.
    exec.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Execution {
    fn new(max_preemptions: usize, prior: Vec<Branch>) -> Arc<Self> {
        Arc::new(Self {
            state: OsMutex::new(State {
                status: vec![Status::Runnable],
                current: 0,
                path: prior,
                cursor: 0,
                preemptions: 0,
                max_preemptions,
                abort: None,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                joiners: vec![Vec::new()],
                timed_out: vec![false],
                os_handles: vec![None],
            }),
            cv: OsCondvar::new(),
        })
    }

    /// The single scheduling point. With `block`, the caller must already
    /// be registered on some wait list; it is taken off the candidate set
    /// until another thread marks it runnable. Returns once the caller is
    /// scheduled again.
    pub(crate) fn reschedule(&self, me: ThreadId, block: bool) {
        if std::thread::panicking() {
            // Teardown: the unwinding thread keeps running (its drops
            // only touch scheduler metadata); everything it would have
            // raced with is parked.
            return;
        }
        let mut st = lock_state(self);
        if let Some(msg) = st.abort.clone() {
            drop(st);
            panic!("loom: execution aborted: {msg}");
        }
        if block {
            st.status[me] = Status::Blocked;
        }
        self.pick_next(&mut st, Some(me));
        self.wait_for_turn_locked(st, me);
    }

    /// Parks until `me` is the scheduled runnable thread (entry point for
    /// freshly spawned threads).
    pub(crate) fn wait_for_turn(&self, me: ThreadId) {
        let st = lock_state(self);
        self.wait_for_turn_locked(st, me);
    }

    fn wait_for_turn_locked(&self, mut st: OsGuard<'_, State>, me: ThreadId) {
        loop {
            if st.current == me && st.status[me] == Status::Runnable {
                return;
            }
            if let Some(msg) = st.abort.clone() {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                panic!("loom: execution aborted: {msg}");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Chooses the next thread to run. `from` is the calling thread, or
    /// `None` when the caller is finishing and cannot continue.
    fn pick_next(&self, st: &mut State, from: Option<ThreadId>) {
        let runnable = |st: &State| -> Vec<ThreadId> {
            st.status
                .iter()
                .enumerate()
                .filter(|&(_, s)| *s == Status::Runnable)
                .map(|(i, _)| i)
                .collect()
        };
        let mut candidates = runnable(st);
        if candidates.is_empty() {
            // Timeout rescue: wake every timed condvar sleeper — the
            // model's reading of "the timeout eventually fires".
            let mut woke = false;
            for cv_id in 0..st.condvars.len() {
                let mut kept = Vec::new();
                for (t, timed) in std::mem::take(&mut st.condvars[cv_id].waiters) {
                    if timed {
                        st.status[t] = Status::Runnable;
                        st.timed_out[t] = true;
                        woke = true;
                    } else {
                        kept.push((t, timed));
                    }
                }
                st.condvars[cv_id].waiters = kept;
            }
            if woke {
                candidates = runnable(st);
            }
        }
        if candidates.is_empty() {
            if st.status.iter().all(|s| *s == Status::Finished) {
                st.current = usize::MAX; // execution over; nothing to run
                self.cv.notify_all();
                return;
            }
            // A genuine deadlock: report and kill the whole test binary —
            // there is no way to unwind parked threads without racing.
            eprintln!(
                "loom: DEADLOCK — no runnable thread and no timed sleeper\n\
                 loom: thread status: {:?}\n\
                 loom: decision path: {}",
                st.status,
                format_path(&st.path),
            );
            std::process::exit(101);
        }
        // Preemption bound (CHESS-style): once the budget is spent, a
        // thread that can continue always does.
        if let Some(me) = from {
            if st.status[me] == Status::Runnable
                && st.preemptions >= st.max_preemptions
                && candidates.len() > 1
            {
                candidates = vec![me];
            }
        }
        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else if st.cursor < st.path.len() {
            let b = &st.path[st.cursor];
            debug_assert_eq!(
                b.choices, candidates,
                "replay divergence: the model closure is nondeterministic"
            );
            let chosen = candidates[b.taken];
            st.cursor += 1;
            chosen
        } else {
            st.path.push(Branch {
                choices: candidates.clone(),
                taken: 0,
            });
            st.cursor += 1;
            candidates[0]
        };
        if let Some(me) = from {
            if st.status[me] == Status::Runnable && chosen != me {
                st.preemptions += 1;
            }
        }
        st.current = chosen;
        self.cv.notify_all();
    }

    // ---- mutexes ----------------------------------------------------

    pub(crate) fn mutex_create(&self) -> usize {
        let mut st = lock_state(self);
        st.mutexes.push(MutexState {
            owner: None,
            waiters: Vec::new(),
        });
        st.mutexes.len() - 1
    }

    pub(crate) fn mutex_lock(&self, me: ThreadId, mid: usize) {
        self.reschedule(me, false); // exploration point before acquiring
        loop {
            let mut st = lock_state(self);
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(me);
                return;
            }
            if std::thread::panicking() {
                // Teardown while the lock is owned by a parked thread:
                // there is no safe way to proceed.
                eprintln!("loom: lock held by a parked thread during teardown");
                std::process::exit(101);
            }
            st.mutexes[mid].waiters.push(me);
            drop(st);
            self.reschedule(me, true);
        }
    }

    pub(crate) fn mutex_unlock(&self, me: ThreadId, mid: usize) {
        {
            let mut st = lock_state(self);
            if st.mutexes[mid].owner != Some(me) {
                // Only reachable during teardown: a guard object dropping
                // after `condvar_wait` already handed ownership back.
                debug_assert!(std::thread::panicking(), "unlock by non-owner");
                return;
            }
            st.mutexes[mid].owner = None;
            for w in std::mem::take(&mut st.mutexes[mid].waiters) {
                st.status[w] = Status::Runnable;
            }
        }
        self.reschedule(me, false); // handoff point after releasing
    }

    // ---- condvars ---------------------------------------------------

    pub(crate) fn condvar_create(&self) -> usize {
        let mut st = lock_state(self);
        st.condvars.push(CvState {
            waiters: Vec::new(),
        });
        st.condvars.len() - 1
    }

    /// Releases `mid`, sleeps on `cv_id`, reacquires `mid`. Returns
    /// whether the wake came from the simulated timeout.
    pub(crate) fn condvar_wait(&self, me: ThreadId, cv_id: usize, mid: usize, timed: bool) -> bool {
        {
            let mut st = lock_state(self);
            debug_assert_eq!(st.mutexes[mid].owner, Some(me), "wait without the lock");
            st.mutexes[mid].owner = None;
            for w in std::mem::take(&mut st.mutexes[mid].waiters) {
                st.status[w] = Status::Runnable;
            }
            st.condvars[cv_id].waiters.push((me, timed));
            st.timed_out[me] = false;
        }
        self.reschedule(me, true);
        let timed_out = {
            let mut st = lock_state(self);
            std::mem::take(&mut st.timed_out[me])
        };
        // Reacquire (barging semantics, like the real primitives).
        loop {
            let mut st = lock_state(self);
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(me);
                return timed_out;
            }
            st.mutexes[mid].waiters.push(me);
            drop(st);
            self.reschedule(me, true);
        }
    }

    pub(crate) fn condvar_notify(&self, me: ThreadId, cv_id: usize, all: bool) {
        {
            let mut st = lock_state(self);
            if all {
                for (t, _) in std::mem::take(&mut st.condvars[cv_id].waiters) {
                    st.status[t] = Status::Runnable;
                }
            } else if !st.condvars[cv_id].waiters.is_empty() {
                // FIFO wake — one valid refinement of "wakes some waiter".
                let (t, _) = st.condvars[cv_id].waiters.remove(0);
                st.status[t] = Status::Runnable;
            }
        }
        self.reschedule(me, false);
    }

    // ---- threads ----------------------------------------------------

    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        me: ThreadId,
        f: impl FnOnce() + Send + 'static,
    ) -> ThreadId {
        let id = {
            let mut st = lock_state(self);
            st.status.push(Status::Runnable);
            st.joiners.push(Vec::new());
            st.timed_out.push(false);
            st.os_handles.push(None);
            st.status.len() - 1
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), id)));
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    exec.wait_for_turn(id);
                    f();
                }));
                exec.finish(id);
                CTX.with(|c| *c.borrow_mut() = None);
            })
            .expect("failed to spawn loom model thread");
        {
            let mut st = lock_state(self);
            st.os_handles[id] = Some(handle);
        }
        self.reschedule(me, false); // the new thread is now a candidate
        id
    }

    pub(crate) fn join_thread(&self, me: ThreadId, target: ThreadId) {
        let finished = {
            let mut st = lock_state(self);
            if st.status[target] == Status::Finished {
                true
            } else {
                st.joiners[target].push(me);
                false
            }
        };
        if !finished {
            self.reschedule(me, true);
        }
    }

    /// Marks a spawned thread finished and hands the baton on.
    fn finish(&self, me: ThreadId) {
        let mut st = lock_state(self);
        st.status[me] = Status::Finished;
        for j in std::mem::take(&mut st.joiners[me]) {
            st.status[j] = Status::Runnable;
        }
        if st.abort.is_some() {
            // Teardown: everyone wakes on the abort flag by themselves.
            self.cv.notify_all();
            return;
        }
        self.pick_next(&mut st, None);
    }
}

fn format_path(path: &[Branch]) -> String {
    let decisions: Vec<String> = path
        .iter()
        .map(|b| format!("{}/{}", b.taken, b.choices.len()))
        .collect();
    format!("[{}]", decisions.join(", "))
}

/// Runs one execution of the model closure, replaying `prior` and
/// extending it depth-first. Returns the full decision path taken.
pub(crate) fn run_execution<F: Fn()>(
    f: &F,
    prior: Vec<Branch>,
    max_preemptions: usize,
) -> Vec<Branch> {
    let exec = Execution::new(max_preemptions, prior);
    CTX.with(|c| {
        let mut slot = c.borrow_mut();
        assert!(slot.is_none(), "loom::model calls cannot nest");
        *slot = Some((Arc::clone(&exec), 0));
    });
    let outcome = catch_unwind(AssertUnwindSafe(f));
    CTX.with(|c| *c.borrow_mut() = None);

    // Teardown: on failure (or leaked threads) raise the abort flag so
    // every parked thread unwinds out of the scheduler, then join the OS
    // threads either way.
    let (leaked, handles) = {
        let mut st = lock_state(&exec);
        let leaked = st.status.iter().skip(1).any(|s| *s != Status::Finished);
        if (outcome.is_err() || leaked) && st.abort.is_none() {
            st.abort = Some(if outcome.is_err() {
                "panic in the model closure".to_owned()
            } else {
                "model closure returned with live threads".to_owned()
            });
        }
        let handles: Vec<_> = st.os_handles.iter_mut().filter_map(Option::take).collect();
        (leaked, handles)
    };
    exec.cv.notify_all();
    for h in handles {
        let _ = h.join();
    }

    let st = lock_state(&exec);
    match outcome {
        Err(payload) => {
            eprintln!(
                "loom: model failed; decision path: {}",
                format_path(&st.path)
            );
            drop(st);
            std::panic::resume_unwind(payload);
        }
        Ok(()) => {
            assert!(
                !leaked,
                "loom: model closure returned while spawned threads were still running \
                 (decision path: {})",
                format_path(&st.path)
            );
            st.path.clone()
        }
    }
}
