//! # unsupervised-er
//!
//! A from-scratch Rust reproduction of *"A Graph-Theoretic Fusion
//! Framework for Unsupervised Entity Resolution"* (ICDE 2018): the
//! **ITER** term/pair ranking algorithm, the **RSS** random-surfer
//! sampler, the **CliqueRank** matrix walk, the fusion loop that
//! reinforces them, every baseline the paper compares against, synthetic
//! analogues of its three benchmark datasets, and a bench harness that
//! regenerates every table and figure of the evaluation section.
//!
//! This facade crate re-exports the workspace and provides the
//! [`pipeline`] glue from a raw [`Dataset`](er_datasets::Dataset) to a
//! resolved set of entities:
//!
//! ```
//! use unsupervised_er::pipeline;
//! use unsupervised_er::prelude::*;
//!
//! // A tiny restaurant-style dataset (42 records, 6 duplicate pairs).
//! let dataset = er_datasets::generators::restaurant::generate(&RestaurantConfig {
//!     records: 42,
//!     duplicate_pairs: 6,
//!     seed: 7,
//! });
//! let mut config = FusionConfig::default();
//! config.cliquerank.threads = 1;
//! let run = pipeline::resolve_dataset(&dataset, &config);
//! let f1 = run.evaluate().f1();
//! // 42 records is a demo-sized corpus; at benchmark scale the fusion
//! // framework reaches ≈ 0.9 F1 (see EXPERIMENTS.md).
//! assert!(f1 > 0.6, "fusion should resolve most duplicates: {f1}");
//! ```

#![deny(unsafe_code)]

pub use er_baselines as baselines;
pub use er_core as core;
pub use er_crowd as crowd;
pub use er_datasets as datasets;
pub use er_eval as eval;
pub use er_graph as graph;
pub use er_matrix as matrix;
pub use er_ml as ml;
pub use er_serve as serve;
pub use er_text as text;

/// The types most applications need.
pub mod explain;
pub mod incremental;

pub mod prelude {
    pub use crate::explain::{explain_pair, rank_candidates};
    pub use crate::incremental::IncrementalResolver;
    pub use er_core::{
        BoostMode, CliqueRankConfig, FusionConfig, FusionOutcome, IterConfig, Resolver, RssConfig,
    };
    pub use er_datasets::{
        Dataset, PaperConfig, ProductConfig, Record, RestaurantConfig, SourcePolicy,
    };
    pub use er_eval::{ConfusionCounts, TruthPairs};
    pub use er_graph::{BipartiteGraph, BipartiteGraphBuilder};
    pub use er_serve::{QueryHandle, ServeConfig, ServeEngine};
    pub use er_text::{Corpus, CorpusBuilder};
}

pub mod pipeline {
    //! End-to-end glue: dataset → corpus → bipartite graph → fusion.

    use er_core::{FusionConfig, FusionOutcome, Resolver};
    use er_datasets::{Dataset, SourcePolicy};
    use er_eval::{evaluate_pairs, ConfusionCounts, TruthPairs};
    use er_graph::{BipartiteGraph, BipartiteGraphBuilder};
    use er_pool::WorkerPool;
    use er_text::{BatchScorer, BlockingStrategy, Corpus, CorpusBuilder, SimKernel, TermId};

    /// Default frequent-term filter (§VII-A): drop terms occurring in
    /// more than this fraction of records.
    ///
    /// The paper only says it removes "very frequent" terms, but its
    /// Table III graph statistics pin the regime down: the Restaurant
    /// record graph has just 5 320 edges out of 367 653 candidate pairs,
    /// which requires cutting domain words (cuisines, cities, street
    /// suffixes) and not only stop words. 5 % reproduces that regime;
    /// per-dataset overrides are available via [`prepare_with`].
    pub const DEFAULT_MAX_DF_FRACTION: f64 = 0.05;

    /// The prepared inputs shared by the fusion framework and every
    /// baseline: the tokenized corpus, the candidate bipartite graph and
    /// the ground-truth pairs.
    #[derive(Debug)]
    pub struct Prepared {
        /// Tokenized, frequency-filtered corpus.
        pub corpus: Corpus,
        /// Term ↔ record-pair bipartite graph over the candidate pairs.
        pub graph: BipartiteGraph,
        /// Ground-truth matching pairs (within the candidate policy).
        pub truth: TruthPairs,
    }

    /// Tokenizes a dataset and builds its candidate bipartite graph with
    /// the default frequent-term filter.
    pub fn prepare(dataset: &Dataset) -> Prepared {
        prepare_with(dataset, DEFAULT_MAX_DF_FRACTION)
    }

    /// [`prepare`] with an explicit frequent-term cap.
    pub fn prepare_with(dataset: &Dataset, max_df_fraction: f64) -> Prepared {
        let corpus = CorpusBuilder::new()
            .extend_texts(dataset.texts())
            .max_df_fraction(max_df_fraction)
            .build();
        let graph = bipartite_graph(&corpus, dataset);
        let truth = TruthPairs::from_pairs(dataset.matching_pairs());
        Prepared {
            corpus,
            graph,
            truth,
        }
    }

    /// Builds the term ↔ pair bipartite graph for a corpus under the
    /// dataset's candidate policy.
    pub fn bipartite_graph(corpus: &Corpus, dataset: &Dataset) -> BipartiteGraph {
        let mut builder = BipartiteGraphBuilder::new(corpus.len(), corpus.vocab_len());
        for i in 0..corpus.vocab_len() {
            let t = TermId(i as u32);
            builder = builder.postings(t.0, corpus.postings(t));
        }
        let sources = dataset.sources();
        if dataset.policy == SourcePolicy::CrossSourceOnly {
            builder = builder.pair_filter(move |a, b| sources[a as usize] != sources[b as usize]);
        }
        builder.build()
    }

    /// [`prepare_with`] under an explicit [`BlockingStrategy`]: the
    /// strategy generates the candidate universe and the bipartite
    /// graph's pair enumeration is restricted to it (composed with the
    /// dataset's candidate policy). [`BlockingStrategy::TokenGraph`]
    /// reproduces [`prepare_with`] exactly; the scalable strategies
    /// (LSH, meta-blocking) shrink the graph before ITER/CliqueRank
    /// ever see it.
    pub fn prepare_with_strategy(
        dataset: &Dataset,
        max_df_fraction: f64,
        strategy: &BlockingStrategy,
        pool: &WorkerPool,
    ) -> Prepared {
        if matches!(strategy, BlockingStrategy::TokenGraph) {
            return prepare_with(dataset, max_df_fraction);
        }
        let corpus = CorpusBuilder::new()
            .extend_texts(dataset.texts())
            .max_df_fraction(max_df_fraction)
            .build();
        let allowed = strategy.candidate_pairs(&corpus, pool);
        let mut builder = BipartiteGraphBuilder::new(corpus.len(), corpus.vocab_len());
        for i in 0..corpus.vocab_len() {
            let t = TermId(i as u32);
            builder = builder.postings(t.0, corpus.postings(t));
        }
        let sources = dataset.sources();
        let cross_only = dataset.policy == SourcePolicy::CrossSourceOnly;
        builder = builder.pair_filter(move |a, b| {
            (!cross_only || sources[a as usize] != sources[b as usize])
                && allowed
                    .binary_search(&if a < b { (a, b) } else { (b, a) })
                    .is_ok()
        });
        let graph = builder.build();
        let truth = TruthPairs::from_pairs(dataset.matching_pairs());
        Prepared {
            corpus,
            graph,
            truth,
        }
    }

    /// A completed fusion run with its inputs, ready for evaluation.
    #[derive(Debug)]
    pub struct ResolvedRun {
        /// The prepared inputs.
        pub prepared: Prepared,
        /// The fusion outcome.
        pub outcome: FusionOutcome,
    }

    impl ResolvedRun {
        /// Pairwise confusion counts of the fusion matches against the
        /// dataset's ground truth.
        pub fn evaluate(&self) -> ConfusionCounts {
            evaluate_pairs(self.outcome.matches.iter().copied(), &self.prepared.truth)
        }
    }

    /// Prepares a dataset and runs the full fusion loop.
    pub fn resolve_dataset(dataset: &Dataset, config: &FusionConfig) -> ResolvedRun {
        let prepared = prepare(dataset);
        let outcome = Resolver::new(config.clone()).resolve(&prepared.graph);
        ResolvedRun { prepared, outcome }
    }

    /// The kernel used for ITER's seed-similarity step: Jaro-Winkler is
    /// the cheapest of the batch kernels (bit-parallel match scan, no
    /// full DP matrix) and its prefix bonus suits the record texts'
    /// name-first token order.
    pub const SEED_KERNEL: SimKernel = SimKernel::JaroWinkler;

    /// Batched seed similarities for every candidate pair of `graph`,
    /// aligned with `graph.pairs()`: [`SEED_KERNEL`] over the record
    /// texts on the string tape. Bit-identical at any thread count.
    pub fn seed_similarities(
        corpus: &Corpus,
        graph: &BipartiteGraph,
        pool: &WorkerPool,
    ) -> Vec<f64> {
        let scorer = BatchScorer::new(corpus);
        let idx: Vec<(u32, u32)> = graph.pairs().iter().map(|p| (p.a, p.b)).collect();
        scorer.score(SEED_KERNEL, &idx, pool)
    }

    /// [`resolve_dataset`] with ITER's first round seeded by batched
    /// string similarities ([`seed_similarities`]) instead of the
    /// uniform §V-C initialization: the reinforcement starts from
    /// informed edge weights, computed on the batch engine in one sweep
    /// over the candidate list.
    pub fn resolve_dataset_seeded(dataset: &Dataset, config: &FusionConfig) -> ResolvedRun {
        resolve_dataset_seeded_with(dataset, config, &BlockingStrategy::TokenGraph)
    }

    /// [`resolve_dataset_seeded`] with the candidate universe generated
    /// by an explicit [`BlockingStrategy`]: blocking, seeding and the
    /// fusion loop all share one worker pool, and the seeded ITER round
    /// only ever scores pairs the strategy admitted.
    pub fn resolve_dataset_seeded_with(
        dataset: &Dataset,
        config: &FusionConfig,
        strategy: &BlockingStrategy,
    ) -> ResolvedRun {
        let pool = WorkerPool::with_policy(config.threads, config.dispatch);
        let prepared = prepare_with_strategy(dataset, DEFAULT_MAX_DF_FRACTION, strategy, &pool);
        let seed = seed_similarities(&prepared.corpus, &prepared.graph, &pool);
        let outcome = Resolver::new(config.clone()).resolve_seeded(&prepared.graph, &seed);
        ResolvedRun { prepared, outcome }
    }

    /// Ground truth as entity labels, with the recall denominator
    /// restricted to the dataset's candidate policy (cross-source
    /// datasets do not charge same-source within-entity pairs).
    pub fn entity_labels(dataset: &Dataset) -> er_eval::EntityLabels {
        let labels: Vec<u32> = dataset.records.iter().map(|r| r.entity).collect();
        er_eval::EntityLabels::with_total(labels, dataset.matching_pairs().len())
    }
}

#[cfg(test)]
mod tests {
    use super::pipeline;
    use er_core::FusionConfig;
    use er_datasets::generators::restaurant;
    use er_datasets::RestaurantConfig;

    #[test]
    fn prepare_builds_consistent_structures() {
        let d = restaurant::generate(&RestaurantConfig {
            records: 60,
            duplicate_pairs: 8,
            seed: 11,
        });
        let p = pipeline::prepare(&d);
        assert_eq!(p.corpus.len(), 60);
        assert_eq!(p.graph.record_count(), 60);
        assert_eq!(p.truth.total(), 8);
        assert!(p.graph.pair_count() > 0);
    }

    #[test]
    fn cross_source_policy_flows_through() {
        let d = er_datasets::generators::product::generate(
            &er_datasets::ProductConfig::default().scaled(0.05),
        );
        let p = pipeline::prepare(&d);
        for pair in p.graph.pairs() {
            assert!(
                d.is_candidate(pair.a, pair.b),
                "pair ({}, {}) violates the cross-source policy",
                pair.a,
                pair.b
            );
        }
    }

    #[test]
    fn end_to_end_fusion_beats_random() {
        let d = restaurant::generate(&RestaurantConfig {
            records: 80,
            duplicate_pairs: 10,
            seed: 3,
        });
        let mut cfg = FusionConfig::default();
        cfg.cliquerank.threads = 1;
        cfg.rounds = 2;
        let run = pipeline::resolve_dataset(&d, &cfg);
        let counts = run.evaluate();
        assert!(counts.f1() > 0.7, "{counts:?}");
    }

    #[test]
    fn seed_similarities_align_with_candidate_pairs() {
        let d = restaurant::generate(&RestaurantConfig {
            records: 60,
            duplicate_pairs: 8,
            seed: 5,
        });
        let p = pipeline::prepare(&d);
        let pool = er_pool::WorkerPool::new(1);
        let seed = pipeline::seed_similarities(&p.corpus, &p.graph, &pool);
        assert_eq!(seed.len(), p.graph.pair_count());
        assert!(seed.iter().all(|s| (0.0..=1.0).contains(s)), "{seed:?}");
        // Jaro-Winkler over near-duplicate texts should not be flat.
        let spread =
            seed.iter().fold(0.0f64, |m, &s| m.max(s)) - seed.iter().fold(1.0f64, |m, &s| m.min(s));
        assert!(spread > 0.1, "seed similarities are flat: {spread}");
    }

    #[test]
    fn seeded_fusion_resolves_duplicates() {
        let d = restaurant::generate(&RestaurantConfig {
            records: 80,
            duplicate_pairs: 10,
            seed: 3,
        });
        let mut cfg = FusionConfig::default();
        cfg.cliquerank.threads = 1;
        cfg.rounds = 2;
        let run = pipeline::resolve_dataset_seeded(&d, &cfg);
        let counts = run.evaluate();
        assert!(counts.f1() > 0.7, "{counts:?}");
    }

    #[test]
    fn token_graph_strategy_matches_default_prepare() {
        let d = restaurant::generate(&RestaurantConfig {
            records: 60,
            duplicate_pairs: 8,
            seed: 11,
        });
        let pool = er_pool::WorkerPool::new(1);
        let a = pipeline::prepare(&d);
        let b = pipeline::prepare_with_strategy(
            &d,
            pipeline::DEFAULT_MAX_DF_FRACTION,
            &er_text::BlockingStrategy::TokenGraph,
            &pool,
        );
        assert_eq!(a.graph.pairs(), b.graph.pairs());
    }

    #[test]
    fn meta_strategy_restricts_the_graph_and_still_resolves() {
        let d = restaurant::generate(&RestaurantConfig {
            records: 80,
            duplicate_pairs: 10,
            seed: 3,
        });
        let pool = er_pool::WorkerPool::new(1);
        let full = pipeline::prepare(&d);
        let meta = pipeline::prepare_with_strategy(
            &d,
            pipeline::DEFAULT_MAX_DF_FRACTION,
            &er_text::BlockingStrategy::meta_default(),
            &pool,
        );
        assert!(meta.graph.pair_count() <= full.graph.pair_count());
        // Every surviving pair must be in the token-graph universe.
        let universe: std::collections::BTreeSet<(u32, u32)> =
            full.graph.pairs().iter().map(|p| (p.a, p.b)).collect();
        for p in meta.graph.pairs() {
            assert!(universe.contains(&(p.a, p.b)));
        }
        let mut cfg = FusionConfig::default();
        cfg.cliquerank.threads = 1;
        cfg.rounds = 2;
        let run = pipeline::resolve_dataset_seeded_with(
            &d,
            &cfg,
            &er_text::BlockingStrategy::meta_default(),
        );
        let counts = run.evaluate();
        assert!(counts.f1() > 0.7, "{counts:?}");
    }

    #[test]
    fn seeded_fusion_is_thread_count_invariant() {
        let d = restaurant::generate(&RestaurantConfig {
            records: 60,
            duplicate_pairs: 8,
            seed: 9,
        });
        let mut matches: Vec<Vec<(u32, u32)>> = Vec::new();
        for threads in [1usize, 4] {
            let cfg = FusionConfig {
                threads,
                rounds: 2,
                ..Default::default()
            };
            let run = pipeline::resolve_dataset_seeded(&d, &cfg);
            matches.push(run.outcome.matches.clone());
        }
        assert_eq!(matches[0], matches[1]);
    }
}
