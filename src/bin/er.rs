//! `er` — command-line entity resolution with the fusion framework.
//!
//! ```text
//! er resolve <records.tsv> [options]     resolve a TSV dataset, print clusters
//! er generate <restaurant|product|paper> [--scale F] [--seed N] [--out FILE]
//! er evaluate <records.tsv> [options]    resolve and score against the truth column
//!
//! options:
//!   --cross-source        only match records from different sources
//!   --max-df F            frequent-term cap as a corpus fraction  [0.05]
//!   --eta F               matching-probability threshold η        [0.98]
//!   --rounds N            ITER ⇄ CliqueRank reinforcement rounds  \[5\]
//!   --alpha F             random-walk exponent α                  \[20\]
//!   --steps N             random-walk step bound S                \[20\]
//!   --output MODE         clusters | pairs | probabilities        [clusters]
//!   --threads N           worker threads for the shared pool      [autodetect]
//! ```
//!
//! `ER_THREADS` in the environment sets the default worker-thread count;
//! `--threads` overrides it. Every parallel phase is deterministic, so
//! the thread count never changes results, only speed.
//!
//! The TSV format is `id \t source \t entity \t text` (see
//! `er_datasets::loader`); `resolve` ignores the entity column,
//! `evaluate` scores against it.

use std::process::ExitCode;

use er_core::{FusionConfig, Resolver};
use er_datasets::{generators, loader, Dataset, SourcePolicy};
use unsupervised_er::pipeline;

fn main() -> ExitCode {
    // ER_OBS_OUT=<path> turns telemetry recording on and dumps the
    // report there on exit (.prom suffix selects Prometheus text; the
    // feature-gated build makes both calls free otherwise).
    er_obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = run(&args);
    match er_obs::dump_if_requested() {
        Ok(Some(path)) => eprintln!("wrote telemetry to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: failed to write telemetry: {e}"),
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `er help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("resolve") => resolve(&args[1..], false),
        Some("evaluate") => resolve(&args[1..], true),
        Some("generate") => generate(&args[1..]),
        Some("help") | None => {
            print!("{}", USAGE);
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    }
}

const USAGE: &str = "\
er — unsupervised entity resolution (ITER + CliqueRank, ICDE 2018)

usage:
  er resolve <records.tsv> [options]     resolve a TSV dataset, print clusters
  er generate <restaurant|product|paper> [--scale F] [--seed N] [--out FILE]
  er evaluate <records.tsv> [options]    resolve and score against the truth column

options:
  --cross-source        only match records from different sources
  --max-df F            frequent-term cap as a corpus fraction  [0.05]
  --eta F               matching-probability threshold eta      [0.98]
  --rounds N            ITER <-> CliqueRank reinforcement rounds [5]
  --alpha F             random-walk exponent alpha              [20]
  --steps N             random-walk step bound S                [20]
  --output MODE         clusters | pairs | probabilities        [clusters]
  --threads N           worker threads for the shared pool      [autodetect]

environment:
  ER_THREADS            default worker-thread count (--threads overrides)
  ER_OBS_OUT            write pipeline telemetry to this path on exit
                        (.prom suffix selects Prometheus text format)
";

struct Options {
    path: Option<String>,
    cross_source: bool,
    max_df: f64,
    output: String,
    config: FusionConfig,
    scale: f64,
    seed: u64,
    out_file: Option<String>,
    kind: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        path: None,
        cross_source: false,
        max_df: 0.05,
        output: "clusters".to_owned(),
        config: FusionConfig::default(),
        scale: 1.0,
        seed: 0,
        out_file: None,
        kind: None,
    };
    // ER_THREADS sets the pool size for hosts where autodetection is
    // wrong (e.g. containers with restricted cpusets); --threads wins.
    if let Ok(t) = std::env::var("ER_THREADS") {
        let t = parse_usize(&t)
            .map_err(|e| format!("bad ER_THREADS: {e}"))?
            .max(1);
        opts.config.threads = t;
        opts.config.iter.threads = t;
        opts.config.cliquerank.threads = t;
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--cross-source" => opts.cross_source = true,
            "--max-df" => opts.max_df = parse_f64(&value("--max-df")?)?,
            "--eta" => opts.config.eta = parse_f64(&value("--eta")?)?,
            "--rounds" => opts.config.rounds = parse_usize(&value("--rounds")?)?,
            "--alpha" => {
                let a = parse_f64(&value("--alpha")?)?;
                opts.config.cliquerank.alpha = a;
            }
            "--steps" => {
                let s = parse_usize(&value("--steps")?)?;
                opts.config.cliquerank.steps = s;
            }
            "--output" => opts.output = value("--output")?,
            "--threads" => {
                let t = parse_usize(&value("--threads")?)?.max(1);
                opts.config.threads = t;
                opts.config.iter.threads = t;
                opts.config.cliquerank.threads = t;
            }
            "--scale" => opts.scale = parse_f64(&value("--scale")?)?,
            "--seed" => opts.seed = parse_usize(&value("--seed")?)? as u64,
            "--out" => opts.out_file = Some(value("--out")?),
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other:?}"));
            }
            positional => {
                if opts.path.is_none() {
                    opts.path = Some(positional.to_owned());
                    opts.kind = Some(positional.to_owned());
                } else {
                    return Err(format!("unexpected argument {positional:?}"));
                }
            }
        }
    }
    Ok(opts)
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse().map_err(|e| format!("bad number {s:?}: {e}"))
}

fn parse_usize(s: &str) -> Result<usize, String> {
    s.parse().map_err(|e| format!("bad integer {s:?}: {e}"))
}

fn resolve(args: &[String], evaluate: bool) -> Result<(), String> {
    let opts = parse_options(args)?;
    let path = opts.path.as_deref().ok_or("missing <records.tsv>")?;
    let policy = if opts.cross_source {
        SourcePolicy::CrossSourceOnly
    } else {
        SourcePolicy::WithinSingleSource
    };
    let dataset = loader::load_tsv(path, policy).map_err(|e| e.to_string())?;
    eprintln!(
        "loaded {} records from {path} ({} candidate universe)",
        dataset.len(),
        dataset.candidate_universe_size()
    );

    let prepared = pipeline::prepare_with(&dataset, opts.max_df);
    eprintln!(
        "{} candidate pairs share at least one term after the df<={} filter",
        prepared.graph.pair_count(),
        opts.max_df
    );
    let outcome = Resolver::new(opts.config.clone()).resolve(&prepared.graph);

    match opts.output.as_str() {
        "clusters" => {
            for cluster in outcome.clusters.iter().filter(|c| c.len() > 1) {
                let ids: Vec<String> = cluster.iter().map(u32::to_string).collect();
                println!("{}", ids.join("\t"));
            }
        }
        "pairs" => {
            for &(a, b) in &outcome.matches {
                println!("{a}\t{b}");
            }
        }
        "probabilities" => {
            for (pair, p) in prepared
                .graph
                .pairs()
                .iter()
                .zip(&outcome.matching_probabilities)
            {
                println!("{}\t{}\t{p:.6}", pair.a, pair.b);
            }
        }
        other => return Err(format!("unknown output mode {other:?}")),
    }

    if evaluate {
        let counts = er_eval::evaluate_pairs(outcome.matches.iter().copied(), &prepared.truth);
        eprintln!(
            "F1 = {:.4}  (precision {:.4}, recall {:.4}; {} matches, {} true pairs)",
            counts.f1(),
            counts.precision(),
            counts.recall(),
            outcome.matches.len(),
            prepared.truth.total()
        );
    } else {
        eprintln!(
            "{} matches in {} multi-record entities",
            outcome.matches.len(),
            outcome.clusters.iter().filter(|c| c.len() > 1).count()
        );
    }
    Ok(())
}

fn generate(args: &[String]) -> Result<(), String> {
    let opts = parse_options(args)?;
    let kind = opts.kind.as_deref().ok_or("missing dataset kind")?;
    let dataset: Dataset = match kind {
        "restaurant" => {
            let mut cfg = er_datasets::RestaurantConfig::default().scaled(opts.scale);
            if opts.seed != 0 {
                cfg.seed = opts.seed;
            }
            generators::restaurant::generate(&cfg)
        }
        "product" => {
            let mut cfg = er_datasets::ProductConfig::default().scaled(opts.scale);
            if opts.seed != 0 {
                cfg.seed = opts.seed;
            }
            generators::product::generate(&cfg)
        }
        "paper" => {
            let mut cfg = er_datasets::PaperConfig::default().scaled(opts.scale);
            if opts.seed != 0 {
                cfg.seed = opts.seed;
            }
            generators::paper::generate(&cfg)
        }
        other => return Err(format!("unknown dataset kind {other:?}")),
    };
    match &opts.out_file {
        Some(path) => {
            loader::save_tsv(&dataset, path).map_err(|e| e.to_string())?;
            eprintln!("wrote {} records to {path}", dataset.len());
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            loader::write_tsv(&dataset, &mut stdout).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(std::string::ToString::to_string).collect()
    }

    #[test]
    fn parses_defaults() {
        let o = parse_options(&args(&["data.tsv"])).unwrap();
        assert_eq!(o.path.as_deref(), Some("data.tsv"));
        assert!(!o.cross_source);
        assert_eq!(o.max_df, 0.05);
        assert_eq!(o.output, "clusters");
        assert_eq!(o.config.rounds, 5);
    }

    #[test]
    fn parses_all_options() {
        let o = parse_options(&args(&[
            "d.tsv",
            "--cross-source",
            "--max-df",
            "0.1",
            "--eta",
            "0.9",
            "--rounds",
            "3",
            "--alpha",
            "10",
            "--steps",
            "15",
            "--output",
            "pairs",
        ]))
        .unwrap();
        assert!(o.cross_source);
        assert_eq!(o.max_df, 0.1);
        assert_eq!(o.config.eta, 0.9);
        assert_eq!(o.config.rounds, 3);
        assert_eq!(o.config.cliquerank.alpha, 10.0);
        assert_eq!(o.config.cliquerank.steps, 15);
        assert_eq!(o.output, "pairs");
    }

    #[test]
    fn parses_threads_option() {
        let o = parse_options(&args(&["d.tsv", "--threads", "3"])).unwrap();
        assert_eq!(o.config.threads, 3);
        assert_eq!(o.config.iter.threads, 3);
        assert_eq!(o.config.cliquerank.threads, 3);
        // 0 clamps to 1 rather than erroring.
        let o = parse_options(&args(&["d.tsv", "--threads", "0"])).unwrap();
        assert_eq!(o.config.threads, 1);
    }

    #[test]
    fn rejects_unknown_option() {
        assert!(parse_options(&args(&["--bogus"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse_options(&args(&["d.tsv", "--eta"])).is_err());
    }

    #[test]
    fn rejects_bad_number() {
        assert!(parse_options(&args(&["d.tsv", "--eta", "high"])).is_err());
    }

    #[test]
    fn rejects_extra_positional() {
        assert!(parse_options(&args(&["a.tsv", "b.tsv"])).is_err());
    }

    #[test]
    fn unknown_command_fails() {
        assert!(run(&args(&["frobnicate"])).is_err());
    }
}
