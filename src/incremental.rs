//! Incremental resolution: append records, re-resolve cheaply.
//!
//! A production deduplication service receives records continuously. A
//! full re-run repeats two expensive phases; both are reusable:
//!
//! * **ITER** converges to the same fixed point from any start
//!   (Theorem 1), so the previous run's term weights warm-start it and it
//!   converges in a handful of iterations instead of dozens.
//! * **CliqueRank** is component-local, so every record-graph component
//!   whose members, edges and similarities are unchanged is replayed from
//!   the [`er_core::CliqueRankCache`] instead of re-solved.
//!
//! New records only touch the components they join (plus any component
//! whose term weights shifted measurably — caught automatically by the
//! content hash), so for a corpus of `N` records receiving a small batch,
//! the matrix work is proportional to the touched components, not to `N`.
//! The produced [`er_core::FusionOutcome`] is the same the batch pipeline would
//! produce up to ITER's convergence tolerance (pinned by integration
//! tests).

use er_core::{
    fusion::decide_matches, run_cliquerank_cached, run_iter_with_init, CliqueRankCache,
    FusionConfig, FusionOutcome, RoundStats,
};
use er_datasets::{Dataset, Record, SourcePolicy};
use er_graph::RecordGraph;

use crate::pipeline;

/// Statistics of one incremental resolve.
#[derive(Debug, Clone, Copy, Default)]
pub struct IncrementalStats {
    /// CliqueRank components served from the cache across all rounds.
    pub cached_components: usize,
    /// CliqueRank components actually solved across all rounds.
    pub solved_components: usize,
    /// Total ITER iterations across rounds (warm starts shrink this).
    pub iter_iterations: usize,
}

/// An appendable resolver that reuses work across resolves.
#[derive(Debug)]
pub struct IncrementalResolver {
    config: FusionConfig,
    max_df_fraction: f64,
    policy: SourcePolicy,
    records: Vec<Record>,
    cache: CliqueRankCache,
    previous_weights: Option<Vec<f64>>,
    dirty: bool,
    outcome: Option<FusionOutcome>,
    stats: IncrementalStats,
}

impl IncrementalResolver {
    /// Creates an empty resolver.
    pub fn new(config: FusionConfig, max_df_fraction: f64, policy: SourcePolicy) -> Self {
        Self {
            config,
            max_df_fraction,
            policy,
            records: Vec::new(),
            cache: CliqueRankCache::new(),
            previous_weights: None,
            dirty: true,
            outcome: None,
            stats: IncrementalStats::default(),
        }
    }

    /// Appends a record; returns its id. Entities are unknown at insert
    /// time, so the ground-truth field is set to the record's own id
    /// (each record its own entity until resolved).
    pub fn add_record(&mut self, text: impl Into<String>, source: u8) -> u32 {
        let id = self.records.len() as u32;
        self.records.push(Record {
            id,
            source,
            entity: id,
            text: text.into(),
        });
        self.dirty = true;
        id
    }

    /// Number of records added so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True before any record is added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Statistics of the most recent resolve.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Resolves the current record set, reusing the previous run's term
    /// weights and cached components. Returns the cached outcome when
    /// nothing was added since the last resolve.
    pub fn resolve(&mut self) -> &FusionOutcome {
        if !self.dirty {
            return self.outcome.as_ref().expect("resolved before");
        }
        let dataset = Dataset::new("incremental", self.records.clone(), self.policy);
        let prepared = pipeline::prepare_with(&dataset, self.max_df_fraction);
        let graph = &prepared.graph;
        let cfg = &self.config;

        let hits_before = self.cache.hits();
        let misses_before = self.cache.misses();
        let mut iter_iterations = 0usize;

        let n_pairs = graph.pair_count();
        let admitted: Vec<bool> = (0..n_pairs as u32)
            .map(|p| graph.terms_of_pair(p).len() >= cfg.min_shared_terms)
            .collect();
        let mut prob = vec![1.0f64; n_pairs];
        let mut rounds = Vec::with_capacity(cfg.rounds);
        let mut last_weights = None;
        let mut last_sims = None;
        for round in 1..=cfg.rounds {
            let t0 = std::time::Instant::now();
            let iter_out =
                run_iter_with_init(graph, &prob, &cfg.iter, self.previous_weights.as_deref());
            iter_iterations += iter_out.iterations;
            let iter_time = t0.elapsed();

            let t1 = std::time::Instant::now();
            let floored: Vec<f64> = iter_out
                .pair_similarities
                .iter()
                .zip(&admitted)
                .map(|(&s, &ok)| {
                    if ok && s + 1e-9 >= cfg.min_similarity {
                        s
                    } else {
                        0.0
                    }
                })
                .collect();
            let gr = RecordGraph::from_pair_scores(graph.record_count(), graph.pairs(), &floored);
            let edge_probs = run_cliquerank_cached(&gr, &cfg.cliquerank, &mut self.cache);
            let cliquerank_time = t1.elapsed();

            let mut new_prob = vec![0.0f64; n_pairs];
            for (pair, &p) in gr.pairs().iter().zip(&edge_probs) {
                let idx = graph.pair_id(pair.a, pair.b).expect("edge is a pair");
                new_prob[idx as usize] = p;
            }
            let probability_delta = prob.iter().zip(&new_prob).map(|(a, b)| (a - b).abs()).sum();
            prob = new_prob;
            rounds.push(RoundStats {
                round,
                iter_iterations: iter_out.iterations,
                iter_deltas: iter_out.deltas.clone(),
                iter_time,
                cliquerank_time,
                probability_delta,
                record_graph_edges: gr.edge_count(),
            });
            last_weights = Some(iter_out.term_weights.clone());
            last_sims = Some(iter_out.pair_similarities);
        }

        let term_weights = last_weights.expect("at least one round");
        let (matches, clusters) = decide_matches(graph, &prob, cfg.eta);
        self.previous_weights = Some(term_weights.clone());
        self.stats = IncrementalStats {
            cached_components: self.cache.hits() - hits_before,
            solved_components: self.cache.misses() - misses_before,
            iter_iterations,
        };
        self.outcome = Some(FusionOutcome {
            term_weights,
            pair_similarities: last_sims.expect("at least one round"),
            matching_probabilities: prob,
            matches,
            clusters,
            rounds,
            round_probabilities: Vec::new(),
        });
        self.dirty = false;
        self.outcome.as_ref().expect("just resolved")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datasets::generators::restaurant;
    use er_datasets::RestaurantConfig;

    fn config() -> FusionConfig {
        let mut cfg = FusionConfig {
            rounds: 2,
            ..Default::default()
        };
        cfg.cliquerank.threads = 1;
        cfg
    }

    fn seed_data() -> Dataset {
        restaurant::generate(&RestaurantConfig {
            records: 90,
            duplicate_pairs: 12,
            seed: 21,
        })
    }

    #[test]
    fn matches_batch_pipeline() {
        let d = seed_data();
        let mut inc = IncrementalResolver::new(config(), 0.035, SourcePolicy::WithinSingleSource);
        for r in &d.records {
            inc.add_record(r.text.clone(), r.source);
        }
        let incremental = inc.resolve().matches.clone();

        let prepared = pipeline::prepare_with(&d, 0.035);
        let batch = er_core::Resolver::new(config()).resolve(&prepared.graph);
        assert_eq!(incremental, batch.matches);
    }

    #[test]
    fn second_resolve_hits_the_cache() {
        let d = seed_data();
        let mut inc = IncrementalResolver::new(config(), 0.035, SourcePolicy::WithinSingleSource);
        for r in &d.records {
            inc.add_record(r.text.clone(), r.source);
        }
        let first = inc.resolve().matches.clone();
        // Append one isolated record (shares nothing) and re-resolve.
        inc.add_record("zzqqy unique gibberish tokens", 0);
        let second = inc.resolve().matches.clone();
        assert_eq!(first, second, "an isolated record changes nothing");
        let stats = inc.stats();
        assert!(
            stats.cached_components > 0,
            "unchanged components must come from the cache: {stats:?}"
        );
        assert_eq!(
            stats.solved_components, 0,
            "nothing to re-solve for an isolated record: {stats:?}"
        );
    }

    #[test]
    fn appending_a_duplicate_links_it() {
        let d = seed_data();
        let mut inc = IncrementalResolver::new(config(), 0.035, SourcePolicy::WithinSingleSource);
        for r in &d.records {
            inc.add_record(r.text.clone(), r.source);
        }
        inc.resolve();
        // Append a copy of record 0 — it must match it.
        let new_id = inc.add_record(d.records[0].text.clone(), 0);
        let outcome = inc.resolve();
        assert!(
            outcome
                .matches
                .iter()
                .any(|&(a, b)| (a, b) == (0, new_id) || (a, b) == (new_id, 0)),
            "appended duplicate must link to its original"
        );
        let stats = inc.stats();
        assert!(
            stats.cached_components >= stats.solved_components,
            "most components unchanged: {stats:?}"
        );
    }

    #[test]
    fn resolve_is_idempotent_without_changes() {
        let mut inc = IncrementalResolver::new(config(), 0.05, SourcePolicy::WithinSingleSource);
        inc.add_record("alpha beta 123", 0);
        inc.add_record("alpha beta 123 gamma", 0);
        let first = inc.resolve().matches.clone();
        let second = inc.resolve().matches.clone();
        assert_eq!(first, second);
    }

    #[test]
    fn empty_resolver() {
        let mut inc = IncrementalResolver::new(config(), 0.05, SourcePolicy::WithinSingleSource);
        assert!(inc.is_empty());
        let outcome = inc.resolve();
        assert!(outcome.matches.is_empty());
    }
}
