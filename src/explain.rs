//! Explaining resolution decisions and ranking query candidates.
//!
//! Production deduplication needs to answer *why* two records were
//! matched (for review UIs and audits) and *which existing records a new
//! one most likely matches* (for point lookups without a full resolve).
//! Both ride on the framework's own learned artifacts: the per-term
//! discrimination weights and the matching probabilities.

use er_core::FusionOutcome;
use er_graph::BipartiteGraph;
use er_text::{Corpus, TermId};

/// One shared term in a match explanation.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedTerm {
    /// The term's text.
    pub term: String,
    /// ITER's learned discrimination power `x_t ∈ (0, 1)`.
    pub weight: f64,
    /// Number of candidate pairs the term touches (`P_t`) — high values
    /// mean a common, weakly informative term.
    pub pair_count: u32,
}

/// Why a pair was (or wasn't) matched.
#[derive(Debug, Clone)]
pub struct MatchExplanation {
    /// The records in question.
    pub pair: (u32, u32),
    /// Shared terms, most discriminative first.
    pub shared_terms: Vec<SharedTerm>,
    /// ITER similarity `s(ri, rj)` — the sum of the shared weights.
    pub similarity: f64,
    /// CliqueRank matching probability `p(ri, rj)`.
    pub probability: f64,
}

/// Explains the decision for records `(a, b)` given a resolved outcome.
/// Returns `None` when the pair shares no term (it was never a
/// candidate, so its probability is 0 by construction).
pub fn explain_pair(
    corpus: &Corpus,
    graph: &BipartiteGraph,
    outcome: &FusionOutcome,
    a: u32,
    b: u32,
) -> Option<MatchExplanation> {
    let pair_id = graph.pair_id(a, b)?;
    let mut shared_terms: Vec<SharedTerm> = graph
        .terms_of_pair(pair_id)
        .iter()
        .map(|&t| SharedTerm {
            term: corpus.vocab().term(TermId(t)).to_owned(),
            weight: outcome.term_weights[t as usize],
            pair_count: graph.pt(t),
        })
        .collect();
    shared_terms.sort_by(|x, y| y.weight.partial_cmp(&x.weight).expect("finite weights"));
    Some(MatchExplanation {
        pair: (a.min(b), a.max(b)),
        shared_terms,
        similarity: outcome.pair_similarities[pair_id as usize],
        probability: outcome.matching_probabilities[pair_id as usize],
    })
}

/// A candidate record for a query, scored by learned term weights.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCandidate {
    /// Record id in the resolved corpus.
    pub record: u32,
    /// Sum of learned weights of the terms shared with the query — the
    /// same `s(·, ·)` ITER would assign to the (query, record) pair.
    pub score: f64,
    /// The shared terms (text form), most discriminative first.
    pub shared_terms: Vec<String>,
}

/// Ranks the records of a resolved corpus against a free-text query,
/// using ITER's learned discrimination weights (so a shared model code
/// outranks five shared marketing words). Returns the top `limit`
/// candidates with a positive score, best first.
pub fn rank_candidates(
    corpus: &Corpus,
    outcome: &FusionOutcome,
    query: &str,
    limit: usize,
) -> Vec<QueryCandidate> {
    // Map the query's tokens onto known vocabulary.
    let mut query_terms: Vec<TermId> = er_text::tokenize_normalized(query)
        .iter()
        .filter_map(|tok| corpus.vocab().get(tok))
        .collect();
    query_terms.sort_unstable();
    query_terms.dedup();

    // Accumulate weight per record via the inverted index.
    let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for &t in &query_terms {
        let w = outcome.term_weights[t.index()];
        if w <= 0.0 {
            continue;
        }
        for &r in corpus.postings(t) {
            *scores.entry(r).or_insert(0.0) += w;
        }
    }
    let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
    ranked.sort_by(|x, y| {
        y.1.partial_cmp(&x.1)
            .expect("finite scores")
            .then(x.0.cmp(&y.0))
    });
    ranked
        .into_iter()
        .take(limit)
        .map(|(record, score)| {
            let mut shared: Vec<(f64, String)> = query_terms
                .iter()
                .filter(|&&t| corpus.term_set(record as usize).contains(&t))
                .map(|&t| {
                    (
                        outcome.term_weights[t.index()],
                        corpus.vocab().term(t).to_owned(),
                    )
                })
                .filter(|(w, _)| *w > 0.0)
                .collect();
            shared.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite weights"));
            QueryCandidate {
                record,
                score,
                shared_terms: shared.into_iter().map(|(_, t)| t).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;
    use er_core::{FusionConfig, Resolver};
    use er_datasets::{Dataset, Record, SourcePolicy};

    fn setup() -> (Dataset, pipeline::Prepared, FusionOutcome) {
        let records = vec![
            Record {
                id: 0,
                source: 0,
                entity: 0,
                text: "sony pslx350h turntable belt drive".into(),
            },
            Record {
                id: 1,
                source: 0,
                entity: 0,
                text: "sony turntable pslx350h".into(),
            },
            Record {
                id: 2,
                source: 0,
                entity: 1,
                text: "sony wm100 walkman cassette".into(),
            },
            Record {
                id: 3,
                source: 0,
                entity: 2,
                text: "panasonic nnh765 microwave oven".into(),
            },
            Record {
                id: 4,
                source: 0,
                entity: 1,
                text: "sony walkman wm100".into(),
            },
        ];
        let d = Dataset::new("t", records, SourcePolicy::WithinSingleSource);
        let prepared = pipeline::prepare_with(&d, 1.0);
        let mut cfg = FusionConfig::default();
        cfg.cliquerank.threads = 1;
        let outcome = Resolver::new(cfg).resolve(&prepared.graph);
        (d, prepared, outcome)
    }

    #[test]
    fn explanation_orders_terms_by_discrimination() {
        let (_, prepared, outcome) = setup();
        let e = explain_pair(&prepared.corpus, &prepared.graph, &outcome, 0, 1)
            .expect("pair shares terms");
        assert_eq!(e.pair, (0, 1));
        assert!(e.probability > 0.9, "{e:?}");
        // The model code must outrank the brand name "sony" (df 4).
        let model_pos = e.shared_terms.iter().position(|t| t.term == "pslx350h");
        let sony_pos = e.shared_terms.iter().position(|t| t.term == "sony");
        assert!(
            model_pos.unwrap() < sony_pos.unwrap(),
            "{:?}",
            e.shared_terms
        );
        // Similarity equals the sum of shared weights.
        let sum: f64 = e.shared_terms.iter().map(|t| t.weight).sum();
        assert!((e.similarity - sum).abs() < 1e-9);
    }

    #[test]
    fn non_candidate_pairs_have_no_explanation() {
        let (_, prepared, outcome) = setup();
        // Records 1 and 3 share no term.
        assert!(explain_pair(&prepared.corpus, &prepared.graph, &outcome, 1, 3).is_none());
    }

    #[test]
    fn query_ranks_model_code_match_first() {
        let (_, prepared, outcome) = setup();
        let hits = rank_candidates(&prepared.corpus, &outcome, "PSLX350H turntable", 10);
        assert!(!hits.is_empty());
        assert!(
            hits[0].record == 0 || hits[0].record == 1,
            "model-code records must rank first: {hits:?}"
        );
        assert!(hits[0].shared_terms.contains(&"pslx350h".to_owned()));
    }

    #[test]
    fn query_with_unknown_terms_returns_nothing() {
        let (_, prepared, outcome) = setup();
        let hits = rank_candidates(&prepared.corpus, &outcome, "zzz unknown tokens", 10);
        assert!(hits.is_empty());
    }

    #[test]
    fn limit_respected_and_sorted() {
        let (_, prepared, outcome) = setup();
        let hits = rank_candidates(&prepared.corpus, &outcome, "sony", 2);
        assert!(hits.len() <= 2);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
